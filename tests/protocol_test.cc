#include <gtest/gtest.h>

#include "src/agent/protocol.h"
#include "src/common/rand.h"

namespace pivot {
namespace {

TEST(ProtocolTest, WeaveRoundTrip) {
  WeaveCommand cmd;
  cmd.query_id = 42;
  cmd.advice.emplace_back("ClientProtocols", AdviceBuilder()
                                                 .Observe({{"procName", "cl.procName"}})
                                                 .Pack(100, BagSpec::First(1), {"cl.procName"})
                                                 .Build());
  cmd.advice.emplace_back(
      "DataNodeMetrics.incrBytesRead",
      AdviceBuilder().Observe({{"delta", "incr.delta"}}).Unpack(100).Emit(42, {}).Build());
  cmd.plan.aggregated = true;
  cmd.plan.group_fields = {"cl.procName"};
  cmd.plan.aggs = {{AggFn::kSum, "incr.delta", "SUM(incr.delta)", false}};
  cmd.plan.output_columns = {"cl.procName", "SUM(incr.delta)"};

  Result<ControlMessage> decoded = DecodeControlMessage(EncodeWeave(cmd));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->type, ControlMessageType::kWeave);
  EXPECT_EQ(decoded->weave.query_id, 42u);
  ASSERT_EQ(decoded->weave.advice.size(), 2u);
  EXPECT_EQ(decoded->weave.advice[0].first, "ClientProtocols");
  EXPECT_EQ(decoded->weave.advice[0].second->ToString(), cmd.advice[0].second->ToString());
  EXPECT_TRUE(decoded->weave.plan.aggregated);
  EXPECT_EQ(decoded->weave.plan.aggs.size(), 1u);
  EXPECT_EQ(decoded->weave.plan.output_columns,
            (std::vector<std::string>{"cl.procName", "SUM(incr.delta)"}));
}

TEST(ProtocolTest, UnweaveRoundTrip) {
  Result<ControlMessage> decoded = DecodeControlMessage(EncodeUnweave(17));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, ControlMessageType::kUnweave);
  EXPECT_EQ(decoded->unweave_query_id, 17u);
}

TEST(ProtocolTest, ReportRoundTrip) {
  AgentReport report;
  report.query_id = 7;
  report.host = "C";
  report.process_name = "DataNode";
  report.timestamp_micros = 3'000'000;
  report.aggregated = true;
  report.tuples.push_back(Tuple{{"incr.host", Value("C")}, {"SUM(incr.delta)", Value(int64_t{12345})}});

  Result<ControlMessage> decoded = DecodeControlMessage(EncodeReport(report));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->type, ControlMessageType::kReport);
  EXPECT_EQ(decoded->report.query_id, 7u);
  EXPECT_EQ(decoded->report.host, "C");
  EXPECT_EQ(decoded->report.timestamp_micros, 3'000'000);
  ASSERT_EQ(decoded->report.tuples.size(), 1u);
  EXPECT_EQ(decoded->report.tuples[0].Get("SUM(incr.delta)").int_value(), 12345);
}

TEST(ProtocolTest, ReportBatchRoundTrip) {
  ReportBatch batch;
  batch.host = "C";
  batch.process_name = "DataNode";
  batch.timestamp_micros = 3'000'000;

  AgentReport r1;
  r1.query_id = 7;
  r1.aggregated = true;
  r1.tuples.push_back(Tuple{{"incr.host", Value("C")}, {"SUM(incr.delta)", Value(int64_t{12345})}});
  AgentReport r2;
  r2.query_id = 9;
  r2.aggregated = false;
  r2.tuples.push_back(Tuple{{"x.v", Value(int64_t{1})}});
  r2.tuples.push_back(Tuple{{"x.v", Value(int64_t{2})}});
  batch.reports = {r1, r2};

  AgentStats hb;
  hb.query_id = 11;
  hb.last_report_micros = -1;
  hb.reports_suppressed = 10;
  hb.tuples_emitted = 0;
  batch.heartbeats = {hb};

  std::vector<size_t> report_bytes;
  std::vector<uint8_t> encoded = EncodeReportBatch(batch, &report_bytes);
  ASSERT_EQ(report_bytes.size(), 2u);
  EXPECT_GT(report_bytes[0], 0u);
  EXPECT_GT(report_bytes[1], 0u);

  Result<ControlMessage> decoded = DecodeControlMessage(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->type, ControlMessageType::kBatch);
  const ReportBatch& b = decoded->batch;
  EXPECT_EQ(b.host, "C");
  EXPECT_EQ(b.process_name, "DataNode");
  EXPECT_EQ(b.timestamp_micros, 3'000'000);
  ASSERT_EQ(b.reports.size(), 2u);
  // Header identity is re-hydrated into each contained report.
  EXPECT_EQ(b.reports[0].host, "C");
  EXPECT_EQ(b.reports[0].process_name, "DataNode");
  EXPECT_EQ(b.reports[0].timestamp_micros, 3'000'000);
  EXPECT_EQ(b.reports[0].query_id, 7u);
  EXPECT_TRUE(b.reports[0].aggregated);
  ASSERT_EQ(b.reports[0].tuples.size(), 1u);
  EXPECT_EQ(b.reports[0].tuples[0].Get("SUM(incr.delta)").int_value(), 12345);
  EXPECT_EQ(b.reports[1].query_id, 9u);
  EXPECT_FALSE(b.reports[1].aggregated);
  ASSERT_EQ(b.reports[1].tuples.size(), 2u);
  ASSERT_EQ(b.heartbeats.size(), 1u);
  EXPECT_EQ(b.heartbeats[0].query_id, 11u);
  EXPECT_EQ(b.heartbeats[0].host, "C");
  EXPECT_EQ(b.heartbeats[0].last_report_micros, -1);
  EXPECT_EQ(b.heartbeats[0].reports_suppressed, 10u);
}

TEST(ProtocolTest, EmptyBatchRoundTrip) {
  ReportBatch batch;
  batch.host = "A";
  batch.process_name = "p";
  Result<ControlMessage> decoded = DecodeControlMessage(EncodeReportBatch(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->batch.reports.empty());
  EXPECT_TRUE(decoded->batch.heartbeats.empty());
}

TEST(ProtocolTest, TruncatedBatchRejected) {
  ReportBatch batch;
  batch.host = "A";
  batch.process_name = "p";
  AgentReport r;
  r.query_id = 1;
  r.tuples.push_back(Tuple{{"x.v", Value(int64_t{1})}});
  batch.reports = {r};
  std::vector<uint8_t> encoded = EncodeReportBatch(batch);
  for (size_t cut = 1; cut < encoded.size(); ++cut) {
    std::vector<uint8_t> truncated(encoded.begin(), encoded.begin() + cut);
    EXPECT_FALSE(DecodeControlMessage(truncated).ok()) << "cut=" << cut;
  }
}

TEST(ProtocolTest, EmptyPayloadRejected) {
  EXPECT_FALSE(DecodeControlMessage({}).ok());
}

TEST(ProtocolTest, UnknownTypeRejected) {
  EXPECT_FALSE(DecodeControlMessage({99}).ok());
}

TEST(ProtocolTest, FuzzDecodeNeverCrashes) {
  Rng rng(2024);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<uint8_t> junk(rng.NextBelow(64));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    if (!junk.empty()) {
      junk[0] = static_cast<uint8_t>(1 + rng.NextBelow(3));  // Valid type byte.
    }
    DecodeControlMessage(junk);  // Must not crash.
  }
}

}  // namespace
}  // namespace pivot
