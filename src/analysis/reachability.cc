#include "src/analysis/reachability.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

namespace pivot {
namespace analysis {

namespace {

using Adjacency = std::map<std::string, std::set<std::string>>;

Adjacency BuildAdjacency(const PropagationRegistry& registry, bool forwarding_only) {
  Adjacency adj;
  for (const PropagationEdge& e : registry.Edges()) {
    if (forwarding_only && !e.forwards_baggage) {
      continue;
    }
    adj[e.from].insert(e.to);
  }
  return adj;
}

bool Reaches(const Adjacency& adj, const std::string& from, const std::string& to) {
  if (from == to) {
    return true;
  }
  std::set<std::string> seen{from};
  std::deque<std::string> frontier{from};
  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop_front();
    auto it = adj.find(cur);
    if (it == adj.end()) {
      continue;
    }
    for (const std::string& next : it->second) {
      if (next == to) {
        return true;
      }
      if (seen.insert(next).second) {
        frontier.push_back(next);
      }
    }
  }
  return false;
}

size_t LongestSimplePath(const Adjacency& adj, const std::string& node,
                         std::set<std::string>* visited) {
  auto it = adj.find(node);
  if (it == adj.end()) {
    return 0;
  }
  size_t best = 0;
  for (const std::string& next : it->second) {
    if (visited->count(next) != 0) {
      continue;
    }
    visited->insert(next);
    best = std::max(best, 1 + LongestSimplePath(adj, next, visited));
    visited->erase(next);
  }
  return best;
}

}  // namespace

bool ForwardingReachable(const PropagationRegistry& registry, const std::string& from,
                         const std::string& to) {
  return Reaches(BuildAdjacency(registry, /*forwarding_only=*/true), from, to);
}

bool AnyReachable(const PropagationRegistry& registry, const std::string& from,
                  const std::string& to) {
  return Reaches(BuildAdjacency(registry, /*forwarding_only=*/false), from, to);
}

bool HasClientEntry(const PropagationRegistry& registry) {
  for (const ComponentInfo& c : registry.Components()) {
    if (c.client_entry) {
      return true;
    }
  }
  return false;
}

bool ReachableFromEntry(const PropagationRegistry& registry, const std::string& component) {
  Adjacency adj = BuildAdjacency(registry, /*forwarding_only=*/false);
  for (const ComponentInfo& c : registry.Components()) {
    if (c.client_entry && Reaches(adj, c.name, component)) {
      return true;
    }
  }
  return false;
}

size_t LongestForwardingPathFrom(const PropagationRegistry& registry, const std::string& from) {
  Adjacency adj = BuildAdjacency(registry, /*forwarding_only=*/true);
  std::set<std::string> visited{from};
  return LongestSimplePath(adj, from, &visited);
}

Report AuditTopology(const PropagationRegistry& registry) {
  Report report;

  // PT302: boundaries that drop baggage. Every one is a place where a `->`
  // join silently loses its left side.
  for (const PropagationEdge& e : registry.Edges()) {
    if (!e.forwards_baggage) {
      report.Add("PT302", Severity::kWarning, e.label.empty() ? e.kind : e.label, -1,
                 "boundary " + e.from + " -> " + e.to + " (" + e.kind +
                     ") drops baggage: happened-before joins cannot cross it");
    }
  }

  // PT303: anchored tracepoints whose component no client entry reaches.
  // Skipped entirely when the model declares no entry points.
  if (HasClientEntry(registry)) {
    Adjacency adj = BuildAdjacency(registry, /*forwarding_only=*/false);
    std::vector<std::string> entries;
    for (const ComponentInfo& c : registry.Components()) {
      if (c.client_entry) {
        entries.push_back(c.name);
      }
    }
    std::set<std::string> flagged;
    for (const auto& [tp, component] : registry.Anchors()) {
      bool reachable = false;
      for (const std::string& entry : entries) {
        if (Reaches(adj, entry, component)) {
          reachable = true;
          break;
        }
      }
      if (!reachable && flagged.insert(component).second) {
        report.Add("PT303", Severity::kWarning, tp, -1,
                   "component '" + component +
                       "' is unreachable from every client entry point: tracepoints there "
                       "(e.g. '" + tp + "') can never observe client-initiated requests");
      }
    }
  }

  // PT304: observed crossings with no declared counterpart.
  std::vector<PropagationEdge> edges = registry.Edges();
  for (const ObservedEdge& o : registry.Observed()) {
    bool declared = false;
    for (const PropagationEdge& e : edges) {
      if (e.from == o.from && e.to == o.to && e.kind == o.kind) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      report.Add("PT304", Severity::kWarning, "", -1,
                 "boundary " + o.from + " -> " + o.to + " (" + o.kind +
                     ") was crossed at runtime but never declared: the static model is "
                     "missing a protocol definition (the paper's §6 pain)");
    }
  }

  return report;
}

}  // namespace analysis
}  // namespace pivot
