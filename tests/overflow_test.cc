// Tests for the §4 propagation-overhead guard (kMaxBagTuples) and the
// Table 4 static split/join API.

#include <gtest/gtest.h>

#include "src/core/baggage.h"
#include "src/core/context.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

Tuple T(int64_t v) { return Tuple{{"x", Value(v)}}; }

TEST(BagOverflowTest, UnboundedBagCapsAndCounts) {
  Baggage baggage;
  for (size_t i = 0; i < kMaxBagTuples + 100; ++i) {
    baggage.Pack(1, BagSpec::All(), T(static_cast<int64_t>(i)));
  }
  EXPECT_EQ(baggage.TupleCount(), kMaxBagTuples);
  EXPECT_EQ(baggage.DroppedTupleCount(), 100u);
  EXPECT_EQ(baggage.Unpack(1).size(), kMaxBagTuples);
}

TEST(BagOverflowTest, BoundedSemanticsNeverDrop) {
  Baggage baggage;
  for (size_t i = 0; i < kMaxBagTuples + 100; ++i) {
    baggage.Pack(1, BagSpec::Recent(4), T(static_cast<int64_t>(i)));
    baggage.Pack(2, BagSpec::Aggregated({}, {{AggFn::kCount, "", "C", false}}),
                 T(static_cast<int64_t>(i)));
  }
  EXPECT_EQ(baggage.DroppedTupleCount(), 0u);
  EXPECT_EQ(baggage.Unpack(1).size(), 4u);
  EXPECT_EQ(baggage.Unpack(2)[0].Get("C").int_value(),
            static_cast<int64_t>(kMaxBagTuples + 100));
}

TEST(BagOverflowTest, DroppedCountSurvivesTheWire) {
  Baggage baggage;
  for (size_t i = 0; i < kMaxBagTuples + 7; ++i) {
    baggage.Pack(1, BagSpec::All(), T(static_cast<int64_t>(i)));
  }
  Result<Baggage> decoded = Baggage::Deserialize(baggage.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->DroppedTupleCount(), 7u);
  EXPECT_EQ(decoded->Serialize(), baggage.Serialize());
}

TEST(BagOverflowTest, MergeRespectsCap) {
  TupleBag a(BagSpec::All());
  TupleBag b(BagSpec::All());
  for (size_t i = 0; i < kMaxBagTuples; ++i) {
    a.Add(T(1));
    b.Add(T(2));
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), kMaxBagTuples);
  EXPECT_EQ(a.dropped(), kMaxBagTuples);
}

// ---------------------------------------------------------------------------
// Table 4 static split/join

TEST(ThreadBaggageSplitJoinTest, SplitIsolatesAndJoinMerges) {
  ExecutionContext ctx;
  ScopedContext scope(&ctx);
  ThreadBaggage::Pack(1, BagSpec::All(), T(1));

  std::vector<uint8_t> branch = ThreadBaggage::Split();
  ASSERT_FALSE(branch.empty());

  // Parent packs on its half.
  ThreadBaggage::Pack(1, BagSpec::All(), T(2));

  // Branch side: its own context, deserialized baggage, its own pack.
  std::vector<uint8_t> branch_result;
  {
    ExecutionContext branch_ctx;
    ScopedContext branch_scope(&branch_ctx);
    ThreadBaggage::Deserialize(branch);
    // The pre-split tuple is visible to the branch...
    EXPECT_EQ(ThreadBaggage::Unpack(1).size(), 1u);
    ThreadBaggage::Pack(1, BagSpec::All(), T(3));
    branch_result = ThreadBaggage::Serialize();
  }

  // ...but the parent's concurrent pack is not, until join.
  EXPECT_EQ(CanonicalTuples(ctx.baggage().Unpack(1)),
            (std::vector<std::string>{"(x=1)", "(x=2)"}));

  ThreadBaggage::Join(branch_result);
  EXPECT_EQ(CanonicalTuples(ctx.baggage().Unpack(1)),
            (std::vector<std::string>{"(x=1)", "(x=2)", "(x=3)"}));
  // The interval returns whole after the join.
  EXPECT_EQ(ctx.baggage().active_id(), ItcId::Seed());
}

TEST(ThreadBaggageSplitJoinTest, NoContextIsNoop) {
  EXPECT_TRUE(ThreadBaggage::Split().empty());
  ThreadBaggage::Join({1, 2, 3});  // No crash.
}

TEST(ThreadBaggageSplitJoinTest, MalformedBranchBytesIgnored) {
  ExecutionContext ctx;
  ScopedContext scope(&ctx);
  ThreadBaggage::Pack(1, BagSpec::All(), T(1));
  ThreadBaggage::Join({0xFF, 0x00, 0x13});
  EXPECT_EQ(ctx.baggage().Unpack(1).size(), 1u);  // Unchanged.
}

}  // namespace
}  // namespace pivot
