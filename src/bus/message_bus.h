// Topic-based publish/subscribe message bus (Fig 2's "message bus").
//
// The frontend publishes weave/unweave commands on a command topic that every
// PT agent subscribes to; agents publish partial query results on a report
// topic the frontend subscribes to. Delivery is synchronous and in
// subscription order, which keeps the simulator deterministic; the bus is
// nevertheless thread-safe so real multi-threaded deployments can share one.

#ifndef PIVOT_SRC_BUS_MESSAGE_BUS_H_
#define PIVOT_SRC_BUS_MESSAGE_BUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pivot {

struct BusMessage {
  std::string topic;
  std::vector<uint8_t> payload;
};

// Well-known topics used by the Pivot Tracing control plane.
inline constexpr char kCommandTopic[] = "pivottracing/commands";
inline constexpr char kReportTopic[] = "pivottracing/reports";

// Per-topic traffic accounting (docs/OBSERVABILITY.md). Snapshots are taken
// under the bus lock, so counts within one topic are mutually consistent.
struct TopicStats {
  std::string topic;
  uint64_t published = 0;       // Publish calls on this topic.
  uint64_t delivered = 0;       // Callback invocations.
  uint64_t bytes = 0;           // Payload bytes published.
  uint64_t no_subscriber = 0;   // Publishes that reached nobody.
  uint64_t subscribers = 0;     // Current subscription count.
};

class MessageBus {
 public:
  using SubscriberId = uint64_t;
  using Callback = std::function<void(const BusMessage&)>;

  MessageBus() = default;
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  // Registers `callback` for messages on `topic`. The returned id cancels the
  // subscription via Unsubscribe.
  SubscriberId Subscribe(std::string topic, Callback callback);
  void Unsubscribe(SubscriberId id);

  // Delivers `msg` synchronously to every current subscriber of its topic, in
  // subscription order. Callbacks run without the bus lock held, so they may
  // publish or (un)subscribe reentrantly.
  void Publish(BusMessage msg);

  // Diagnostics.
  uint64_t published_count() const;
  uint64_t delivered_count() const;
  // Publishes to topics with no current subscriber — messages silently lost.
  // Nonzero on a control topic means a dead/missing agent or frontend.
  uint64_t dropped_publishes() const;

  // Per-topic accounting, sorted by topic name.
  std::vector<TopicStats> TopicSnapshot() const;

 private:
  struct Subscriber {
    SubscriberId id;
    std::shared_ptr<Callback> callback;
  };

  struct TopicCounters {
    uint64_t published = 0;
    uint64_t delivered = 0;
    uint64_t bytes = 0;
    uint64_t no_subscriber = 0;
  };

  mutable std::mutex mu_;
  SubscriberId next_id_ = 1;
  std::map<std::string, std::vector<Subscriber>> topics_;
  // id -> topic, recorded at Subscribe so Unsubscribe is a direct topic
  // lookup instead of a scan over every topic's subscriber list.
  std::map<SubscriberId, std::string> subscriber_topics_;
  std::map<std::string, TopicCounters> counters_;
  uint64_t published_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_SRC_BUS_MESSAGE_BUS_H_
