#include "src/analysis/causality_graph.h"

#include <sstream>

namespace pivot {
namespace analysis {

void DeclareRpcBoundary(PropagationRegistry* registry, const std::string& from,
                        const std::string& to, const std::string& label) {
  registry->DeclareEdge(PropagationEdge{from, to, "rpc", label, /*forwards_baggage=*/true});
  registry->DeclareEdge(
      PropagationEdge{to, from, "rpc-response", label, /*forwards_baggage=*/true});
}

void PropagationRegistry::DeclareComponent(const std::string& name, bool client_entry) {
  if (name.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ComponentInfo& info = components_[name];
  info.name = name;
  info.client_entry |= client_entry;
}

void PropagationRegistry::DeclareEdge(PropagationEdge edge) {
  if (edge.from.empty() || edge.to.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& end : {edge.from, edge.to}) {
    ComponentInfo& info = components_[end];
    info.name = end;
  }
  edges_.insert(std::move(edge));
}

void PropagationRegistry::ObserveEdge(const std::string& from, const std::string& to,
                                      const std::string& kind) {
  if (from.empty() || to.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  observed_.insert(ObservedEdge{from, to, kind});
}

void PropagationRegistry::AnchorTracepoint(const std::string& tracepoint,
                                           const std::string& component) {
  if (tracepoint.empty() || component.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  anchors_[tracepoint] = component;
  ComponentInfo& info = components_[component];
  info.name = component;
}

std::string PropagationRegistry::ComponentOf(const std::string& tracepoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = anchors_.find(tracepoint);
  return it == anchors_.end() ? std::string() : it->second;
}

std::vector<ComponentInfo> PropagationRegistry::Components() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ComponentInfo> out;
  out.reserve(components_.size());
  for (const auto& [name, info] : components_) {
    out.push_back(info);
  }
  return out;
}

std::vector<PropagationEdge> PropagationRegistry::Edges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<PropagationEdge>(edges_.begin(), edges_.end());
}

std::vector<ObservedEdge> PropagationRegistry::Observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ObservedEdge>(observed_.begin(), observed_.end());
}

std::map<std::string, std::string> PropagationRegistry::Anchors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return anchors_;
}

bool PropagationRegistry::empty() const {
  // A graph with no declared boundaries is no model at all — components or
  // anchors alone must not switch the reachability passes on.
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.empty();
}

std::string PropagationRegistry::RenderText() const {
  std::vector<ComponentInfo> components = Components();
  std::vector<PropagationEdge> edges = Edges();
  std::vector<ObservedEdge> observed = Observed();
  std::map<std::string, std::string> anchors = Anchors();

  std::ostringstream out;
  out << "propagation graph: " << components.size() << " components, " << edges.size()
      << " declared boundaries\n";
  out << "components:\n";
  for (const ComponentInfo& c : components) {
    out << "  " << c.name << (c.client_entry ? "  [client entry]" : "") << "\n";
  }
  out << "boundaries:\n";
  for (const PropagationEdge& e : edges) {
    out << "  " << e.from << " -> " << e.to << "  (" << e.kind;
    if (!e.label.empty()) {
      out << ": " << e.label;
    }
    out << ")" << (e.forwards_baggage ? "" : "  DROPS BAGGAGE") << "\n";
  }
  if (!anchors.empty()) {
    out << "tracepoint anchors:\n";
    for (const auto& [tp, component] : anchors) {
      out << "  " << tp << " @ " << component << "\n";
    }
  }
  // Observed crossings with no declared counterpart — the §6 failure mode.
  std::vector<ObservedEdge> unknown;
  for (const ObservedEdge& o : observed) {
    bool declared = false;
    for (const PropagationEdge& e : edges) {
      if (e.from == o.from && e.to == o.to && e.kind == o.kind) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      unknown.push_back(o);
    }
  }
  if (!unknown.empty()) {
    out << "UNDECLARED boundaries observed at runtime:\n";
    for (const ObservedEdge& o : unknown) {
      out << "  " << o.from << " -> " << o.to << "  (" << o.kind << ")\n";
    }
  }
  return out.str();
}

}  // namespace analysis
}  // namespace pivot
