#include "src/core/advice.h"

#include <algorithm>
#include <atomic>

namespace pivot {

namespace {

std::atomic<uint64_t> g_truncations{0};

}  // namespace

namespace advice_internal {

// Sampling decision: a global counter hashed through splitmix64 gives a
// reproducible (single-threaded) yet well-distributed accept/reject sequence
// without per-advice mutable state.
bool SampleAccept(double rate) {
  if (rate >= 1.0) {
    return true;
  }
  if (rate <= 0.0) {
    return false;
  }
  static std::atomic<uint64_t> counter{0};
  uint64_t z = counter.fetch_add(1, std::memory_order_relaxed) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 < rate;
}

void CountTruncation() { g_truncations.fetch_add(1, std::memory_order_relaxed); }

}  // namespace advice_internal

namespace {
using advice_internal::SampleAccept;
}  // namespace

uint64_t Advice::truncation_count() { return g_truncations.load(std::memory_order_relaxed); }

void Advice::Execute(ExecutionContext* ctx, const Tuple& exports) const {
  if (ctx == nullptr) {
    return;
  }
  // The working set: starts as one empty tuple so that a leading Observe
  // replaces it and degenerate programs still behave sensibly.
  std::vector<Tuple> working;
  working.emplace_back();

  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kSample: {
        if (!SampleAccept(op.sample_rate)) {
          return;
        }
        break;
      }
      case OpKind::kObserve: {
        Tuple observed;
        for (const auto& [from, to] : op.observe) {
          observed.Append(to, exports.Get(from));
        }
        // Observe concatenates onto the working set (normally the initial
        // empty tuple, yielding exactly the observed tuple).
        for (auto& w : working) {
          w = w.Concat(observed);
        }
        break;
      }
      case OpKind::kUnpack: {
        std::vector<Tuple> unpacked = ctx->baggage().Unpack(op.bag);
        // Inner-join semantics: "if t_o is observed and t_u1 and t_u2 are
        // unpacked, then the resulting tuples are t_o·t_u1 and t_o·t_u2".
        // No unpacked tuples -> the working set empties and nothing is
        // packed or emitted downstream.
        std::vector<Tuple> joined;
        joined.reserve(std::min(working.size() * unpacked.size(), kMaxWorkingSet));
        bool truncated = false;
        for (const auto& w : working) {
          for (const auto& u : unpacked) {
            if (joined.size() >= kMaxWorkingSet) {
              truncated = true;
              break;
            }
            joined.push_back(w.Concat(u));
          }
          if (truncated) {
            break;
          }
        }
        if (truncated) {
          g_truncations.fetch_add(1, std::memory_order_relaxed);
        }
        working = std::move(joined);
        break;
      }
      case OpKind::kLet: {
        for (auto& w : working) {
          w.Append(op.let_name, op.expr->Eval(w));
        }
        break;
      }
      case OpKind::kFilter: {
        std::vector<Tuple> kept;
        kept.reserve(working.size());
        for (auto& w : working) {
          if (op.expr->Eval(w).AsBool()) {
            kept.push_back(std::move(w));
          }
        }
        working = std::move(kept);
        break;
      }
      case OpKind::kPack: {
        for (const auto& w : working) {
          if (op.fields.empty() || op.bag_spec.semantics == PackSemantics::kAggregate) {
            ctx->baggage().Pack(op.bag, op.bag_spec, w);
          } else {
            ctx->baggage().Pack(op.bag, op.bag_spec, w.Project(op.fields));
          }
        }
        break;
      }
      case OpKind::kEmit: {
        EmitSink* sink =
            ctx->runtime() != nullptr ? ctx->runtime()->sink : nullptr;
        if (sink == nullptr) {
          break;
        }
        for (const auto& w : working) {
          if (op.fields.empty()) {
            sink->EmitTuple(op.query_id, w);
          } else {
            sink->EmitTuple(op.query_id, w.Project(op.fields));
          }
        }
        break;
      }
    }
    if (working.empty()) {
      return;  // Nothing left for downstream ops to act on.
    }
  }
}

namespace {

std::string FieldList(const std::vector<std::string>& fields) {
  std::string out = "[";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += fields[i];
  }
  out += "]";
  return out;
}

std::string SpecString(const BagSpec& spec) {
  switch (spec.semantics) {
    case PackSemantics::kAll:
      return "";
    case PackSemantics::kFirstN:
      return spec.limit == 1 ? "-FIRST" : "-FIRST(" + std::to_string(spec.limit) + ")";
    case PackSemantics::kRecentN:
      return spec.limit == 1 ? "-RECENT" : "-RECENT(" + std::to_string(spec.limit) + ")";
    case PackSemantics::kAggregate: {
      std::string s = "-AGG(";
      for (size_t i = 0; i < spec.aggs.size(); ++i) {
        if (i != 0) {
          s += ", ";
        }
        s += AggFnName(spec.aggs[i].fn);
        s += "(" + spec.aggs[i].input + ")";
      }
      if (!spec.group_fields.empty()) {
        s += " BY " + FieldList(spec.group_fields);
      }
      s += ")";
      return s;
    }
  }
  return "";
}

}  // namespace

std::string Advice::ToString() const {
  std::string out;
  for (const Op& op : ops_) {
    if (!out.empty()) {
      out += "\n";
    }
    switch (op.kind) {
      case OpKind::kObserve: {
        out += "OBSERVE ";
        for (size_t i = 0; i < op.observe.size(); ++i) {
          if (i != 0) {
            out += ", ";
          }
          out += op.observe[i].first;
          if (op.observe[i].second != op.observe[i].first) {
            out += " AS " + op.observe[i].second;
          }
        }
        break;
      }
      case OpKind::kUnpack:
        out += "UNPACK bag" + std::to_string(op.bag);
        break;
      case OpKind::kLet:
        out += "LET " + op.let_name + " = " + op.expr->ToString();
        break;
      case OpKind::kFilter:
        out += "FILTER " + op.expr->ToString();
        break;
      case OpKind::kPack:
        out += "PACK" + SpecString(op.bag_spec) + " bag" + std::to_string(op.bag) + " " +
               FieldList(op.fields);
        break;
      case OpKind::kEmit:
        out += "EMIT q" + std::to_string(op.query_id) + " " + FieldList(op.fields);
        break;
      case OpKind::kSample:
        out += "SAMPLE " + std::to_string(op.sample_rate);
        break;
    }
  }
  return out;
}

AdviceBuilder& AdviceBuilder::Sample(double rate) {
  Advice::Op op;
  op.kind = Advice::OpKind::kSample;
  op.sample_rate = rate;
  ops_.push_back(std::move(op));
  return *this;
}

AdviceBuilder& AdviceBuilder::Observe(std::vector<std::pair<std::string, std::string>> vars) {
  Advice::Op op;
  op.kind = Advice::OpKind::kObserve;
  op.observe = std::move(vars);
  ops_.push_back(std::move(op));
  return *this;
}

AdviceBuilder& AdviceBuilder::Unpack(BagKey bag) {
  Advice::Op op;
  op.kind = Advice::OpKind::kUnpack;
  op.bag = bag;
  ops_.push_back(std::move(op));
  return *this;
}

AdviceBuilder& AdviceBuilder::Let(std::string name, Expr::Ptr expr) {
  Advice::Op op;
  op.kind = Advice::OpKind::kLet;
  op.let_name = std::move(name);
  op.expr = std::move(expr);
  ops_.push_back(std::move(op));
  return *this;
}

AdviceBuilder& AdviceBuilder::Filter(Expr::Ptr predicate) {
  Advice::Op op;
  op.kind = Advice::OpKind::kFilter;
  op.expr = std::move(predicate);
  ops_.push_back(std::move(op));
  return *this;
}

AdviceBuilder& AdviceBuilder::Pack(BagKey bag, BagSpec spec, std::vector<std::string> fields) {
  Advice::Op op;
  op.kind = Advice::OpKind::kPack;
  op.bag = bag;
  op.bag_spec = std::move(spec);
  op.fields = std::move(fields);
  ops_.push_back(std::move(op));
  return *this;
}

AdviceBuilder& AdviceBuilder::Emit(uint64_t query_id, std::vector<std::string> fields) {
  Advice::Op op;
  op.kind = Advice::OpKind::kEmit;
  op.query_id = query_id;
  op.fields = std::move(fields);
  ops_.push_back(std::move(op));
  return *this;
}

Advice::Ptr AdviceBuilder::Build() { return std::make_shared<const Advice>(std::move(ops_)); }

}  // namespace pivot
