// Shared helpers for the test suite: manual clocks, fake process runtimes,
// collecting emit sinks, and canonical tuple comparison.

#ifndef PIVOT_TESTS_TEST_UTIL_H_
#define PIVOT_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/context.h"
#include "src/core/tuple.h"

namespace pivot {

// EmitSink that records everything advice emits, per query.
class CollectingSink : public EmitSink {
 public:
  void EmitTuple(uint64_t query_id, const Tuple& t) override {
    emitted_[query_id].push_back(t);
  }

  const std::vector<Tuple>& emitted(uint64_t query_id) const {
    static const std::vector<Tuple> kEmpty;
    auto it = emitted_.find(query_id);
    return it == emitted_.end() ? kEmpty : it->second;
  }

  size_t total() const {
    size_t n = 0;
    for (const auto& [id, v] : emitted_) {
      n += v.size();
    }
    return n;
  }

  void Clear() { emitted_.clear(); }

 private:
  std::map<uint64_t, std::vector<Tuple>> emitted_;
};

// A manually-advanced clock shared by fake processes.
struct ManualClock {
  int64_t now = 0;
  int64_t Tick(int64_t delta = 1) { return now += delta; }
};

// A fake process: runtime + optional sink, with a shared manual clock.
struct FakeProcess {
  ProcessRuntime runtime;
  CollectingSink sink;

  FakeProcess(std::string host, std::string name, ManualClock* clock) {
    runtime.info.host = std::move(host);
    runtime.info.process_name = std::move(name);
    runtime.info.process_id = 1;
    runtime.now_micros = [clock] { return clock->now; };
    runtime.sink = &sink;
  }
};

// Canonical (sorted string) form for order-insensitive tuple comparison.
inline std::vector<std::string> CanonicalTuples(const std::vector<Tuple>& tuples) {
  std::vector<std::string> out;
  out.reserve(tuples.size());
  for (const auto& t : tuples) {
    out.push_back(t.ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pivot

#endif  // PIVOT_TESTS_TEST_UTIL_H_
