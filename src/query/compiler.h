// Query compiler: lowers a parsed Query to advice woven at tracepoints (§3)
// and applies the happened-before-join optimizations of §4 / Table 3.
//
// A query's sources are topologically ordered by the `->` constraints. Every
// source except the From source becomes a *packing stage*: its advice
// observes, joins tuples unpacked from its predecessors, evaluates any Where
// clauses that are already decidable, and packs (projected / pre-aggregated)
// tuples for its successors — exactly the paper's recursive advice generation
// ("we recursively generate advice for the joined query, and append a Pack
// operation at the end of its advice"). The From source becomes the *emit
// stage* whose tuples stream to the process-local agent.
//
// Optimizations (each independently toggleable for the ablation benches):
//   * projection pushdown  — pack only columns needed downstream (Π rules);
//   * selection pushdown   — evaluate each Where at the earliest stage where
//                            all its columns exist (σ rules);
//   * aggregation pushdown — when every select aggregate is computable at one
//                            packing stage and nothing else from that stage is
//                            needed beyond group keys, pack partial aggregate
//                            state instead of raw tuples and combine at the
//                            agent/frontend (A/GA rules with Combine).

#ifndef PIVOT_SRC_QUERY_COMPILER_H_
#define PIVOT_SRC_QUERY_COMPILER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/analysis/query_linter.h"
#include "src/common/status.h"
#include "src/core/advice.h"
#include "src/core/aggregation.h"
#include "src/core/tracepoint.h"
#include "src/query/ast.h"

namespace pivot {

// Named queries referencable as join sources (the paper's Q9 joins Q8).
class QueryRegistry {
 public:
  Status Register(std::string name, Query q);
  const Query* Find(std::string_view name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Query, std::less<>> queries_;
};

// The compilation artifact: advice to weave plus the result-side plan the
// agent and frontend execute (grouping, combining, output shaping).
struct CompiledQuery {
  uint64_t query_id = 0;
  Query ast;

  // (tracepoint name, advice) pairs, ready for TracepointRegistry::WeaveQuery.
  std::vector<std::pair<std::string, Advice::Ptr>> advice;

  // Result-side aggregation plan. When `aggregated` is false the query
  // streams raw tuples (Q8-style) and these are unused except
  // output_columns.
  bool aggregated = false;
  std::vector<std::string> group_fields;
  std::vector<AggSpec> aggs;  // from_state marks pushed-down aggregates.
  std::vector<std::string> output_columns;  // Final column order.

  // Human-readable per-tracepoint advice listing plus the packing cost class
  // of every bag (the §4 "explain"-style overhead preview).
  std::string Explain() const;

  // Static cost estimate: one entry per Pack op, classifying how the §4
  // optimizations bound the number of tuples propagated in the baggage.
  struct PackCost {
    std::string tracepoint;
    BagKey bag = 0;
    std::string bound;      // "1 (FIRST)", "<= 3 (RECENT)", "#groups", "unbounded".
    bool unbounded = false; // The "full table scan" risk case (§4).
    size_t fields = 0;      // Columns carried per tuple (0 = aggregate state).
  };
  std::vector<PackCost> EstimatePackCosts() const;
};

// Builds the §4 "explain" shadow of a compiled query: the same tracepoints,
// unpacks, filters and packs, but every stage *counts* tuples instead of the
// final aggregation — "Pivot Tracing can execute a modified version of the
// query to count tuples rather than aggregate them explicitly. This would
// provide live analysis similar to 'explain' queries in the database domain."
// The shadow's results are rows of ($stage, COUNT) where $stage is
// "pack@<tracepoint>" or "emit@<tracepoint>". `shadow_id` must be a fresh
// query id (its bags must not collide with the original's).
CompiledQuery MakeCountingQuery(const CompiledQuery& original, uint64_t shadow_id);

// Glob-style tracepoint pattern matching ('*' matches any run of characters,
// '?' any single character) — the query-language analogue of the prototype's
// AspectJ-like pointcuts ("Pivot Tracing also supports pattern matching, for
// example, all methods of an interface on a class", §5). A source written as
// `From e In DN.*` expands at compile time to the union of all matching
// tracepoints in the schema registry.
bool TracepointPatternMatch(std::string_view pattern, std::string_view name);

// Runs the whole-query linter (src/analysis) over a compiled query: adapts
// CompiledQuery's advice list and result plan to the analysis API. Callers
// that know more than the compiler extend `options` (the frontend passes the
// bags of already-installed queries for the collision check, and disables the
// dead-column heuristic for Explain counting shadows).
analysis::QueryLintResult LintCompiledQuery(const CompiledQuery& compiled,
                                            const analysis::LintOptions& options);

class QueryCompiler {
 public:
  struct Options {
    bool push_projection = true;
    bool push_selection = true;
    bool push_aggregation = true;
    // Run the static analyzer (src/analysis) over the compiled advice and
    // fail compilation on error-severity findings — the compiler rejecting
    // its own output is the first of the three verification boundaries
    // (compile, install, agent weave). Off only for tooling that wants the
    // raw diagnostics (Frontend::Lint) or deliberately-broken test inputs.
    bool verify = true;
    // Deployment propagation graph for the reachability passes
    // (PT301/PT302/PT303/PT305). Null skips them — see
    // analysis::LintOptions::propagation.
    const analysis::PropagationRegistry* propagation = nullptr;
    // PT305 worst-case baggage growth budget (tuple-cells per request).
    size_t baggage_budget = analysis::kDefaultBaggageBudget;
  };

  // `registry` validates tracepoints/exports; `named_queries` resolves
  // subquery joins (may be null if unused).
  QueryCompiler(const TracepointRegistry* registry, const QueryRegistry* named_queries)
      : QueryCompiler(registry, named_queries, Options{}) {}
  QueryCompiler(const TracepointRegistry* registry, const QueryRegistry* named_queries,
                Options options);

  // Compiles `q` under the given id. Performs semantic analysis: alias
  // resolution, happened-before DAG validation, field/export checking, and
  // select/group-by consistency.
  Result<CompiledQuery> Compile(const Query& q, uint64_t query_id) const;

 private:
  const TracepointRegistry* registry_;
  const QueryRegistry* named_queries_;
  Options options_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_QUERY_COMPILER_H_
