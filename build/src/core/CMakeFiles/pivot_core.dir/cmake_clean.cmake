file(REMOVE_RECURSE
  "CMakeFiles/pivot_core.dir/advice.cc.o"
  "CMakeFiles/pivot_core.dir/advice.cc.o.d"
  "CMakeFiles/pivot_core.dir/advice_io.cc.o"
  "CMakeFiles/pivot_core.dir/advice_io.cc.o.d"
  "CMakeFiles/pivot_core.dir/aggregation.cc.o"
  "CMakeFiles/pivot_core.dir/aggregation.cc.o.d"
  "CMakeFiles/pivot_core.dir/baggage.cc.o"
  "CMakeFiles/pivot_core.dir/baggage.cc.o.d"
  "CMakeFiles/pivot_core.dir/context.cc.o"
  "CMakeFiles/pivot_core.dir/context.cc.o.d"
  "CMakeFiles/pivot_core.dir/expr.cc.o"
  "CMakeFiles/pivot_core.dir/expr.cc.o.d"
  "CMakeFiles/pivot_core.dir/itc.cc.o"
  "CMakeFiles/pivot_core.dir/itc.cc.o.d"
  "CMakeFiles/pivot_core.dir/itc_stamp.cc.o"
  "CMakeFiles/pivot_core.dir/itc_stamp.cc.o.d"
  "CMakeFiles/pivot_core.dir/trace_graph.cc.o"
  "CMakeFiles/pivot_core.dir/trace_graph.cc.o.d"
  "CMakeFiles/pivot_core.dir/tracepoint.cc.o"
  "CMakeFiles/pivot_core.dir/tracepoint.cc.o.d"
  "CMakeFiles/pivot_core.dir/tuple.cc.o"
  "CMakeFiles/pivot_core.dir/tuple.cc.o.d"
  "CMakeFiles/pivot_core.dir/value.cc.o"
  "CMakeFiles/pivot_core.dir/value.cc.o.d"
  "CMakeFiles/pivot_core.dir/wire.cc.o"
  "CMakeFiles/pivot_core.dir/wire.cc.o.d"
  "libpivot_core.a"
  "libpivot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
