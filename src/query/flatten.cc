#include "src/query/flatten.h"

#include <set>

#include "src/query/compiler.h"

namespace pivot {

Expr::Ptr RewriteFieldRefs(const Expr::Ptr& e,
                           const std::function<std::string(const std::string&)>& rename) {
  switch (e->op()) {
    case ExprOp::kLiteral:
      return e;
    case ExprOp::kField:
      return Expr::Field(rename(e->field_name()));
    case ExprOp::kNot:
    case ExprOp::kNeg:
      return Expr::Unary(e->op(), RewriteFieldRefs(e->lhs(), rename));
    default:
      return Expr::Binary(e->op(), RewriteFieldRefs(e->lhs(), rename),
                          RewriteFieldRefs(e->rhs(), rename));
  }
}

namespace {

// Resolves a join source to a registered named query. The parser cannot tell
// a subquery reference from a tracepoint name (both are bare identifiers), so
// resolution happens here: a single-name source matching a registered query
// is a subquery join; registered query names take precedence over same-named
// tracepoints.
const Query* ResolveSubquery(const SourceRef& src, const QueryRegistry* named_queries) {
  if (named_queries == nullptr) {
    return nullptr;
  }
  if (src.is_subquery()) {
    return named_queries->Find(src.subquery);
  }
  if (src.tracepoints.size() == 1) {
    return named_queries->Find(src.tracepoints[0]);
  }
  return nullptr;
}

// Prefixes "a.x" -> "<outer>$a.x" when "a" is one of the subquery's aliases.
std::string RenameQualified(const std::string& field, const std::string& outer_alias,
                            const std::set<std::string>& sub_aliases) {
  size_t dot = field.find('.');
  if (dot == std::string::npos) {
    return field;
  }
  std::string alias = field.substr(0, dot);
  if (sub_aliases.count(alias) == 0) {
    return field;
  }
  return outer_alias + "$" + field;
}

// Splices `join` (whose source is the named subquery `sub`) into `out`.
Status InlineSubquery(FlatQuery* out, const JoinClause& join, const Query& sub,
                      const QueryRegistry* named_queries, int depth) {
  if (sub.has_aggregates() || !sub.group_by.empty()) {
    return UnimplementedError("joined subqueries with aggregation are not supported: " +
                              join.source.alias);
  }
  if (sub.select.empty()) {
    return InvalidArgumentError("joined subquery has no Select outputs: " + join.source.alias);
  }

  std::set<std::string> sub_aliases;
  sub_aliases.insert(sub.from.alias);
  for (const auto& j : sub.joins) {
    sub_aliases.insert(j.source.alias);
  }
  const std::string& outer = join.source.alias;
  auto rename = [&](const std::string& f) { return RenameQualified(f, outer, sub_aliases); };
  auto rename_alias = [&](const std::string& a) {
    return sub_aliases.count(a) != 0 ? outer + "$" + a : a;
  };

  // The subquery's From source joins the outer query directly, inheriting the
  // outer join's temporal filter (First(Q8) keeps the first Q8 output, which
  // is produced at Q8's From stage).
  JoinClause spliced_from;
  spliced_from.source = sub.from;
  spliced_from.source.alias = rename_alias(sub.from.alias);
  spliced_from.source.temporal = join.source.temporal;
  spliced_from.source.n = join.source.n;
  spliced_from.left = spliced_from.source.alias;
  spliced_from.right = join.right;
  if (ResolveSubquery(sub.from, named_queries) != nullptr) {
    return UnimplementedError("subquery whose From is itself a subquery");
  }
  out->joins.push_back(std::move(spliced_from));

  for (const auto& j : sub.joins) {
    JoinClause renamed = j;
    renamed.source.alias = rename_alias(j.source.alias);
    renamed.left = rename_alias(j.left);
    renamed.right = rename_alias(j.right);
    if (const Query* nested = ResolveSubquery(j.source, named_queries)) {
      if (depth > 8) {
        return InvalidArgumentError("subquery nesting too deep");
      }
      PIVOT_RETURN_IF_ERROR(InlineSubquery(out, renamed, *nested, named_queries, depth + 1));
      continue;
    }
    out->joins.push_back(std::move(renamed));
  }

  for (const auto& w : sub.where) {
    out->where.push_back(RewriteFieldRefs(w, rename));
  }

  // Select outputs become computed columns at the subquery's From stage. A
  // single output is addressable by the bare outer alias; multiple outputs as
  // "<outer>.<display>".
  for (const auto& item : sub.select) {
    LetBinding let;
    let.alias = rename_alias(sub.from.alias);
    let.name = sub.select.size() == 1 ? outer : outer + "." + item.display;
    let.expr = RewriteFieldRefs(item.expr, rename);
    out->lets.push_back(std::move(let));
  }
  return Status::Ok();
}

}  // namespace

Status FlattenQuery(const Query& q, const QueryRegistry* named_queries, FlatQuery* out) {
  if (ResolveSubquery(q.from, named_queries) != nullptr) {
    return UnimplementedError("the From source cannot be a subquery");
  }
  out->from = q.from;
  out->where.insert(out->where.end(), q.where.begin(), q.where.end());
  out->group_by = q.group_by;
  out->select = q.select;
  for (const auto& j : q.joins) {
    if (const Query* sub = ResolveSubquery(j.source, named_queries)) {
      PIVOT_RETURN_IF_ERROR(InlineSubquery(out, j, *sub, named_queries, 0));
      continue;
    }
    if (j.source.is_subquery()) {
      return NotFoundError("unknown subquery: " + j.source.subquery);
    }
    out->joins.push_back(j);
  }
  return Status::Ok();
}

}  // namespace pivot
