// End-to-end latency diagnosis (§6.2): Q8-style latency measurement with the
// built-in `time` export, named queries (Q9 joins Q8), and per-component
// decomposition under an injected network fault.
//
// Build & run:  ./build/examples/latency_diagnosis

#include <algorithm>
#include <cstdio>
#include <memory>

#include "src/hadoop/cluster.h"

using namespace pivot;

int main() {
  HadoopClusterConfig config;
  config.worker_hosts = 4;
  config.dataset_files = 200;
  config.seed = 82;
  config.mapreduce.split_bytes = 16 << 20;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();
  Frontend* frontend = world->frontend();

  // ---- Q8: request latency from timestamps packed/unpacked in baggage ----
  // "Advice can pack the timestamp of any event then unpack it at a
  // subsequent event, enabling comparison of timestamps between events."
  constexpr char kQ8[] =
      "From response In HBase.ResponseReceived\n"
      "Join request In MostRecent(HBase.RequestSent) On request -> response\n"
      "Select response.time - request.time As latencyMicros";
  uint64_t q8 = *frontend->Install(kQ8);

  // ---- Q9: a named query joined by another query ----
  // The paper's Q9 averages a latency measurement per completed Hadoop job:
  // the joined "source" is another query's output. Here the measured quantity
  // is per-map-task latency (container start -> task done); every task's
  // measurement happens-before the job's JobComplete, so the join holds.
  if (Status s = frontend->RegisterNamedQuery(
          "QTaskLatency",
          "From d In MR.MapTaskDone\n"
          "Join c In MostRecent(YARN.ContainerStart) On c -> d\n"
          "Select d.time - c.time");
      !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  uint64_t q9 = *frontend->Install(
      "From job In MR.JobComplete\n"
      "Join latencyMeasurement In QTaskLatency On latencyMeasurement -> job\n"
      "GroupBy job.id\n"
      "Select job.id, AVERAGE(latencyMeasurement), COUNT");

  // ---- Decomposed latency, for root-causing ----
  uint64_t q_decomp = *frontend->Install(
      "From done In HBase.ResponseReceived\n"
      "Join sent In MostRecent(HBase.RequestSent) On sent -> done\n"
      "Join dn In MostRecent(DN.DataTransferProtocol.done) On dn -> done\n"
      "Select done.time - sent.time As latency, dn.transfer, dn.blocked, dn.gc, dn.host");

  // ---- Fault: host C's NIC limps at 100 Mbit ----
  cluster.DowngradeNic(cluster.worker(2), 12.5e6);

  // ---- Workload ----
  std::vector<std::unique_ptr<HbaseWorkload>> clients;
  for (int h = 0; h < 4; ++h) {
    SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(h)), "Hscan");
    clients.push_back(std::make_unique<HbaseWorkload>(proc, cluster.hbase().servers(),
                                                      /*scan=*/true, 20 * kMicrosPerMilli,
                                                      100 + static_cast<uint64_t>(h)));
    clients.back()->Start(10 * kMicrosPerSecond);
  }
  // A MapReduce job for Q9 to observe.
  SimProcess* job_client = cluster.AddClient(cluster.master_host(), "MRsortDemo");
  MapReduceWorkload mr(job_client, cluster.mapreduce(), "MRsortDemo", 64 << 20,
                       config.mapreduce);
  mr.Start(10 * kMicrosPerSecond);

  world->StartAgentFlushLoop(15 * kMicrosPerSecond);
  world->env()->RunAll();

  // ---- Results ----
  {
    std::vector<double> latencies;
    for (const Tuple& row : frontend->Results(q8)) {
      latencies.push_back(row.Get("latencyMicros").AsDouble() / 1000.0);
    }
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      return latencies.empty() ? 0.0 : latencies[static_cast<size_t>(p * (latencies.size() - 1))];
    };
    printf("Q8 — end-to-end HBase latency from %zu requests [ms]:\n", latencies.size());
    printf("  p50 %.1f   p90 %.1f   p99 %.1f   max %.1f\n\n", pct(0.5), pct(0.9), pct(0.99),
           latencies.empty() ? 0.0 : latencies.back());
  }

  printf("Q9 — average map-task latency per completed job (named-query join):\n");
  for (const Tuple& row : frontend->Results(q9)) {
    printf("  %s\n", row.ToString().c_str());
  }

  printf("\nDecomposition — average DataNode-side components by DataNode host [ms]:\n");
  {
    struct Acc {
      double transfer = 0, blocked = 0, gc = 0, latency = 0;
      int n = 0;
    };
    std::map<std::string, Acc> by_host;
    for (const Tuple& row : frontend->Results(q_decomp)) {
      Acc& acc = by_host[row.Get("dn.host").string_value()];
      acc.transfer += row.Get("dn.transfer").AsDouble();
      acc.blocked += row.Get("dn.blocked").AsDouble();
      acc.gc += row.Get("dn.gc").AsDouble();
      acc.latency += row.Get("latency").AsDouble();
      ++acc.n;
    }
    printf("  %6s %8s %10s %10s %8s %10s\n", "DN", "n", "e2e", "transfer", "blocked", "gc");
    for (const auto& [host, acc] : by_host) {
      double inv = acc.n > 0 ? 1.0 / (acc.n * 1000.0) : 0;
      printf("  %6s %8d %10.1f %10.1f %8.1f %10.2f%s\n", host.c_str(), acc.n,
             acc.latency * inv, acc.transfer * inv, acc.blocked * inv, acc.gc * inv,
             host == "C" ? "   <-- limplocked NIC" : "");
    }
  }
  printf("\nRequests served by DataNode C spend their time in network transfer — the\n"
         "faulty link is identified without touching a single log file.\n");
  return 0;
}
