# Empty compiler generated dependencies file for auto_diagnosis.
# This may be replaced when dependencies are built.
