// Sharded emission-path equivalence (docs/PERFORMANCE.md, "Emission path"):
// the same tuple stream pushed through K threads into a multi-shard PTAgent
// must produce exactly the results of a single serial Aggregator — the
// shard-merge at Flush is the paper's Table 3 combiner, so sharding may
// change association order but never values. Single-threaded emission must
// stay byte-for-byte identical to a one-shard agent (determinism contract
// for the simulator and the golden tests).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/agent/agent.h"
#include "src/agent/frontend.h"
#include "src/bus/message_bus.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

WeaveCommand GroupedCommand(uint64_t id) {
  // GroupBy x.v: COUNT plus SUM(x.w) per group — exercises both the keyed
  // index and multi-accumulator merge.
  WeaveCommand cmd;
  cmd.query_id = id;
  cmd.advice.emplace_back(
      "X", AdviceBuilder().Observe({{"v", "x.v"}, {"w", "x.w"}}).Emit(id, {}).Build());
  cmd.plan.aggregated = true;
  cmd.plan.group_fields = {"x.v"};
  cmd.plan.aggs = {{AggFn::kCount, "", "COUNT", false},
                   {AggFn::kSum, "x.w", "SUM(x.w)", false}};
  cmd.plan.output_columns = {"x.v", "COUNT", "SUM(x.w)"};
  return cmd;
}

Tuple Row(int64_t v, int64_t w) {
  return Tuple{{"x.v", Value(v)}, {"x.w", Value(w)}};
}

// Collects the state tuples of every report the agent publishes for `id`.
class BatchCollector {
 public:
  BatchCollector(MessageBus* bus, uint64_t id) : bus_(bus) {
    sub_ = bus_->Subscribe(kReportTopic, [this, id](const BusMessage& msg) {
      Result<ControlMessage> decoded = DecodeControlMessage(msg.payload);
      if (!decoded.ok() || decoded->type != ControlMessageType::kBatch) {
        return;
      }
      for (AgentReport& r : decoded->batch.reports) {
        if (r.query_id == id) {
          for (Tuple& t : r.tuples) {
            state_tuples_.push_back(std::move(t));
          }
        }
      }
    });
  }
  ~BatchCollector() { bus_->Unsubscribe(sub_); }

  const std::vector<Tuple>& state_tuples() const { return state_tuples_; }

 private:
  MessageBus* bus_;
  MessageBus::SubscriberId sub_;
  std::vector<Tuple> state_tuples_;
};

TEST(ShardedEmitTest, ConcurrentShardedIntakeMatchesSerialReference) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  constexpr uint64_t kQuery = 11;

  MessageBus bus;
  TracepointRegistry registry;
  PTAgent agent(&bus, &registry, ProcessInfo{"A", "proc", 1}, /*shard_count=*/8);
  BatchCollector collector(&bus, kQuery);
  bus.Publish(BusMessage{kCommandTopic, EncodeWeave(GroupedCommand(kQuery))});

  // Deterministic per-thread streams: thread t emits (v = i % 7, w = t + i).
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&agent, t] {
      for (int i = 0; i < kPerThread; ++i) {
        agent.EmitTuple(kQuery, Row(i % 7, t + i));
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  agent.Flush(1'000'000);

  // Reference: the identical multiset of rows through one serial Aggregator.
  Aggregator reference(GroupedCommand(kQuery).plan.group_fields,
                       GroupedCommand(kQuery).plan.aggs);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      reference.AddInput(Row(i % 7, t + i));
    }
  }

  // Merge the published state tuples the way the frontend does and compare
  // final results order-insensitively (shard drain order may differ from the
  // serial insertion order; values may not).
  Aggregator merged(GroupedCommand(kQuery).plan.group_fields, GroupedCommand(kQuery).plan.aggs);
  for (const Tuple& t : collector.state_tuples()) {
    merged.AddState(t);
  }
  EXPECT_EQ(CanonicalTuples(merged.Finalize()), CanonicalTuples(reference.Finalize()));
  EXPECT_EQ(agent.emitted_tuples(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(agent.dropped_tuples(), 0u);
}

TEST(ShardedEmitTest, FrontendMergeMatchesReferenceEndToEnd) {
  // Same check through the full pipeline: woven tracepoint -> sharded agent
  // -> batch frame -> frontend merge.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;

  MessageBus bus;
  TracepointRegistry schema;
  TracepointDef def;
  def.name = "X";
  def.exports = {"v"};
  ASSERT_TRUE(schema.Define(def).ok());

  TracepointRegistry registry;
  ProcessRuntime runtime;
  runtime.info = {"A", "proc", 1};
  PTAgent agent(&bus, &registry, runtime.info, /*shard_count=*/8);
  runtime.sink = &agent;
  Tracepoint* tp = *registry.Define(def);
  Frontend frontend(&bus, &schema);

  Result<uint64_t> q = frontend.Install("From e In X GroupBy e.v Select e.v, COUNT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ExecutionContext ctx(&runtime);
      for (int i = 0; i < kPerThread; ++i) {
        tp->Invoke(&ctx, {{"v", Value(int64_t{i % 5})}});
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  agent.Flush(1'000'000);

  std::vector<Tuple> rows = frontend.Results(*q);
  ASSERT_EQ(rows.size(), 5u);
  for (const Tuple& row : rows) {
    EXPECT_EQ(row.Get("COUNT").int_value(), kThreads * kPerThread / 5);
  }
}

TEST(ShardedEmitTest, SingleThreadReportIdenticalToOneShardAgent) {
  // A single-threaded emitter lands in exactly one shard, so a multi-shard
  // agent's report must match a one-shard (global-lock-equivalent) agent's
  // report tuple-for-tuple, order included.
  constexpr uint64_t kQuery = 3;
  MessageBus bus_sharded;
  MessageBus bus_single;
  TracepointRegistry reg_a;
  TracepointRegistry reg_b;
  PTAgent sharded(&bus_sharded, &reg_a, ProcessInfo{"A", "p", 1}, /*shard_count=*/8);
  PTAgent single(&bus_single, &reg_b, ProcessInfo{"A", "p", 1}, /*shard_count=*/1);
  BatchCollector sharded_reports(&bus_sharded, kQuery);
  BatchCollector single_reports(&bus_single, kQuery);
  bus_sharded.Publish(BusMessage{kCommandTopic, EncodeWeave(GroupedCommand(kQuery))});
  bus_single.Publish(BusMessage{kCommandTopic, EncodeWeave(GroupedCommand(kQuery))});

  for (int i = 0; i < 500; ++i) {
    Tuple row = Row(i % 11, i);
    sharded.EmitTuple(kQuery, row);
    single.EmitTuple(kQuery, row);
  }
  sharded.Flush(1'000'000);
  single.Flush(1'000'000);

  ASSERT_EQ(sharded_reports.state_tuples().size(), single_reports.state_tuples().size());
  for (size_t i = 0; i < sharded_reports.state_tuples().size(); ++i) {
    EXPECT_EQ(sharded_reports.state_tuples()[i].ToString(),
              single_reports.state_tuples()[i].ToString());
  }
}

TEST(ShardedEmitTest, HeartbeatSemanticsSurviveBatching) {
  // Quiet queries still heartbeat every kFlushesPerSuppressedHeartbeat
  // flushes, now inside the batch frame.
  constexpr uint64_t kQuery = 9;
  MessageBus bus;
  TracepointRegistry registry;
  PTAgent agent(&bus, &registry, ProcessInfo{"A", "p", 1}, /*shard_count=*/4);
  std::vector<AgentStats> heartbeats;
  auto sub = bus.Subscribe(kReportTopic, [&](const BusMessage& msg) {
    Result<ControlMessage> decoded = DecodeControlMessage(msg.payload);
    if (decoded.ok() && decoded->type == ControlMessageType::kBatch) {
      for (const AgentStats& hb : decoded->batch.heartbeats) {
        heartbeats.push_back(hb);
      }
    }
  });
  bus.Publish(BusMessage{kCommandTopic, EncodeWeave(GroupedCommand(kQuery))});

  for (uint64_t i = 1; i <= kFlushesPerSuppressedHeartbeat; ++i) {
    agent.Flush(static_cast<int64_t>(i) * 1000);
  }
  ASSERT_EQ(heartbeats.size(), 1u);
  EXPECT_EQ(heartbeats[0].query_id, kQuery);
  EXPECT_EQ(heartbeats[0].host, "A");
  EXPECT_EQ(heartbeats[0].reports_suppressed, kFlushesPerSuppressedHeartbeat);
  EXPECT_EQ(heartbeats[0].last_report_micros, -1);
  bus.Unsubscribe(sub);
}

}  // namespace
}  // namespace pivot
