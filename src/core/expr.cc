#include "src/core/expr.h"

#include <algorithm>

namespace pivot {

Expr::Ptr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

Expr::Ptr Expr::Field(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kField;
  e->field_ = std::move(name);
  return e;
}

Expr::Ptr Expr::Binary(ExprOp op, Ptr lhs, Ptr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

Expr::Ptr Expr::Unary(ExprOp op, Ptr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->lhs_ = std::move(operand);
  return e;
}

Value Expr::Eval(const Tuple& t) const {
  switch (op_) {
    case ExprOp::kLiteral:
      return literal_;
    case ExprOp::kField:
      return t.Get(BoundFieldId());
    case ExprOp::kAdd:
      return ValueAdd(lhs_->Eval(t), rhs_->Eval(t));
    case ExprOp::kSub:
      return ValueSub(lhs_->Eval(t), rhs_->Eval(t));
    case ExprOp::kMul:
      return ValueMul(lhs_->Eval(t), rhs_->Eval(t));
    case ExprOp::kDiv:
      return ValueDiv(lhs_->Eval(t), rhs_->Eval(t));
    case ExprOp::kMod:
      return ValueMod(lhs_->Eval(t), rhs_->Eval(t));
    case ExprOp::kEq:
      return Value(int64_t{lhs_->Eval(t) == rhs_->Eval(t)});
    case ExprOp::kNe:
      return Value(int64_t{lhs_->Eval(t) != rhs_->Eval(t)});
    case ExprOp::kLt:
      return Value(int64_t{lhs_->Eval(t).Compare(rhs_->Eval(t)) < 0});
    case ExprOp::kLe:
      return Value(int64_t{lhs_->Eval(t).Compare(rhs_->Eval(t)) <= 0});
    case ExprOp::kGt:
      return Value(int64_t{lhs_->Eval(t).Compare(rhs_->Eval(t)) > 0});
    case ExprOp::kGe:
      return Value(int64_t{lhs_->Eval(t).Compare(rhs_->Eval(t)) >= 0});
    case ExprOp::kAnd:
      // Short-circuit to keep evaluation cost bounded by tree size.
      if (!lhs_->Eval(t).AsBool()) {
        return Value(int64_t{0});
      }
      return Value(int64_t{rhs_->Eval(t).AsBool()});
    case ExprOp::kOr:
      if (lhs_->Eval(t).AsBool()) {
        return Value(int64_t{1});
      }
      return Value(int64_t{rhs_->Eval(t).AsBool()});
    case ExprOp::kNot:
      return Value(int64_t{!lhs_->Eval(t).AsBool()});
    case ExprOp::kNeg:
      return ValueSub(Value(int64_t{0}), lhs_->Eval(t));
  }
  return Value();
}

void Expr::Bind() const {
  if (op_ == ExprOp::kField) {
    (void)BoundFieldId();
    return;
  }
  if (lhs_ != nullptr) {
    lhs_->Bind();
  }
  if (rhs_ != nullptr) {
    rhs_->Bind();
  }
}

void Expr::CollectFields(std::vector<std::string>* out) const {
  if (op_ == ExprOp::kField) {
    if (std::find(out->begin(), out->end(), field_) == out->end()) {
      out->push_back(field_);
    }
    return;
  }
  if (lhs_ != nullptr) {
    lhs_->CollectFields(out);
  }
  if (rhs_ != nullptr) {
    rhs_->CollectFields(out);
  }
}

bool Expr::FieldsSubsetOf(const std::vector<std::string>& available) const {
  std::vector<std::string> used;
  CollectFields(&used);
  for (const auto& f : used) {
    if (std::find(available.begin(), available.end(), f) == available.end()) {
      return false;
    }
  }
  return true;
}

namespace {

const char* OpToken(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd:
      return "+";
    case ExprOp::kSub:
      return "-";
    case ExprOp::kMul:
      return "*";
    case ExprOp::kDiv:
      return "/";
    case ExprOp::kMod:
      return "%";
    case ExprOp::kEq:
      return "==";
    case ExprOp::kNe:
      return "!=";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    case ExprOp::kGt:
      return ">";
    case ExprOp::kGe:
      return ">=";
    case ExprOp::kAnd:
      return "&&";
    case ExprOp::kOr:
      return "||";
    default:
      return "?";
  }
}

}  // namespace

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kLiteral:
      if (literal_.is_string()) {
        return "\"" + literal_.string_value() + "\"";
      }
      return literal_.ToString();
    case ExprOp::kField:
      return field_;
    case ExprOp::kNot:
      return "!(" + lhs_->ToString() + ")";
    case ExprOp::kNeg:
      return "-(" + lhs_->ToString() + ")";
    default:
      return "(" + lhs_->ToString() + " " + OpToken(op_) + " " + rhs_->ToString() + ")";
  }
}

}  // namespace pivot
