#!/bin/sh
# Tier-1 verification: configure, build, run the full test suite, then the
# telemetry probe-effect gate (unwoven tracepoint fast path must stay within
# MAX_OVERHEAD_PCT of the seed implementation; see docs/OBSERVABILITY.md) and
# the install-time analysis gate (static analysis of one query on the full
# Hadoop topology must stay under MAX_LINT_MICROS; see docs/ANALYSIS.md).
#
# Usage: scripts/check.sh [--sanitize=<mode>] [build-dir]
#   --sanitize=address   build with ASan+UBSan in a separate build dir
#   --sanitize=thread    build with TSan in a separate build dir
#   MAX_OVERHEAD_PCT=10  overhead gate threshold (percent)
#
# Sanitizer runs skip the overhead gate: instrumented timings are meaningless.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
sanitize=""
case "${1:-}" in
  --sanitize=*)
    sanitize=${1#--sanitize=}
    shift
    ;;
esac
max_overhead=${MAX_OVERHEAD_PCT:-10}
min_serialize_speedup=${MIN_SERIALIZE_SPEEDUP:-10}
min_mt_speedup=${MIN_MT_SPEEDUP:-3}
max_st_ratio=${MAX_ST_RATIO:-1.25}

# Machine-readable bench results: every bench writes BENCH_<name>.json here
# (bench/bench_util.h BenchJson); CI uploads the directory as an artifact.
export PIVOT_BENCH_JSON_DIR=${PIVOT_BENCH_JSON_DIR:-"$repo_root/bench-results"}
mkdir -p "$PIVOT_BENCH_JSON_DIR"
export PIVOT_GIT_SHA=${PIVOT_GIT_SHA:-$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)}

case "$sanitize" in
  "")
    build_dir=${1:-"$repo_root/build"}
    cmake -B "$build_dir" -S "$repo_root"
    ;;
  address)
    build_dir=${1:-"$repo_root/build-asan"}
    cmake -B "$build_dir" -S "$repo_root" -DPIVOT_SANITIZE="address;undefined"
    ;;
  thread)
    build_dir=${1:-"$repo_root/build-tsan"}
    cmake -B "$build_dir" -S "$repo_root" -DPIVOT_SANITIZE="thread"
    ;;
  *)
    echo "unknown --sanitize mode '$sanitize' (expected: address, thread)" >&2
    exit 2
    ;;
esac

cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

echo
echo "=== tier-1 tests ==="
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"

if [ -n "$sanitize" ]; then
  echo
  echo "All checks passed under -fsanitize=$sanitize."
  exit 0
fi

echo
echo "=== telemetry overhead gate (<= ${max_overhead}%) ==="
"$build_dir/bench/bench_telemetry_overhead" --max-overhead-pct="$max_overhead"

max_lint_micros=${MAX_LINT_MICROS:-1000}
echo
echo "=== install-time analysis gate (<= ${max_lint_micros} us/query) ==="
"$build_dir/bench/bench_lint_overhead" --benchmark_min_time=0.01s \
  --max-lint-micros="$max_lint_micros"

echo
echo "=== serialize memoization gate (clean >= ${min_serialize_speedup}x faster than dirty) ==="
"$build_dir/bench/bench_hotpath" --min-serialize-speedup="$min_serialize_speedup"

echo
echo "=== emission scaling gate (sharded >= ${min_mt_speedup}x at 8 threads, st ratio <= ${max_st_ratio}x) ==="
# The MT gate self-skips on < 4 hardware threads (the contention it measures
# cannot exist on one core); the single-thread ratio gate always runs.
"$build_dir/bench/bench_emit_mt" --min-mt-speedup="$min_mt_speedup" \
  --max-st-ratio="$max_st_ratio"

echo
echo "All checks passed. Bench results: $PIVOT_BENCH_JSON_DIR/BENCH_*.json"
