file(REMOVE_RECURSE
  "libpivot_simsys.a"
)
