# Empty dependencies file for cross_tier_analysis.
# This may be replaced when dependencies are built.
