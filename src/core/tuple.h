// Tuple: a row of the streaming distributed dataset (§3).
//
// Tracepoint invocations produce tuples of named Values; happened-before joins
// concatenate tuples from causally-earlier advice. Field names are qualified
// by query alias ("incr.delta", "cl.procName") so joined tuples keep unambiguous
// column names, exactly like the paper's query examples.

#ifndef PIVOT_SRC_CORE_TUPLE_H_
#define PIVOT_SRC_CORE_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/value.h"

namespace pivot {

class Tuple {
 public:
  struct Field {
    std::string name;
    Value value;

    bool operator==(const Field& other) const {
      return name == other.name && value == other.value;
    }
  };

  Tuple() = default;
  Tuple(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Tuple(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  // Appends a field. Does not check for duplicates; Set() replaces instead.
  void Append(std::string name, Value value) {
    fields_.push_back(Field{std::move(name), std::move(value)});
  }

  // Replaces the named field, or appends it if absent.
  void Set(std::string_view name, Value value);

  // Returns the named field's value, or null if absent.
  Value Get(std::string_view name) const;
  bool Has(std::string_view name) const;

  // Concatenation `t1 · t2`, the joined-tuple construction of §3: fields of
  // `this` followed by fields of `other`.
  Tuple Concat(const Tuple& other) const;

  // Projection Π: restricts to `names`, preserving the given order. Missing
  // fields project to null (the analyzer rejects unknown fields up front).
  Tuple Project(const std::vector<std::string>& names) const;

  // Key for group-by: hash + equality over the values of `names` in order.
  uint64_t HashFields(const std::vector<std::string>& names) const;

  // "(a=1, b=x)" rendering.
  std::string ToString() const;

  bool operator==(const Tuple& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_TUPLE_H_
