// Wire codec for expressions and advice programs.
//
// The frontend compiles queries to advice and ships the advice to every PT
// agent over the message bus (Fig 2 ③④); agents decode and weave it locally.
// Decoding is safe on untrusted bytes (bounds-checked, depth-capped) and
// preserves the advice safety guarantees: the decoded program is the same
// loop-free instruction list that was encoded.

#ifndef PIVOT_SRC_CORE_ADVICE_IO_H_
#define PIVOT_SRC_CORE_ADVICE_IO_H_

#include <cstdint>
#include <vector>

#include "src/core/advice.h"
#include "src/core/expr.h"

namespace pivot {

void EncodeExpr(std::vector<uint8_t>* out, const Expr::Ptr& e);
bool DecodeExpr(const uint8_t* data, size_t size, size_t* pos, Expr::Ptr* out);

void EncodeAdvice(std::vector<uint8_t>* out, const Advice& advice);
bool DecodeAdvice(const uint8_t* data, size_t size, size_t* pos, Advice::Ptr* out);

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_ADVICE_IO_H_
