# Empty dependencies file for itc_stamp_test.
# This may be replaced when dependencies are built.
