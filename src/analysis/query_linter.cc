#include "src/analysis/query_linter.h"

#include <algorithm>
#include <set>

#include "src/analysis/reachability.h"

namespace pivot {
namespace analysis {

namespace {

// Per-stage facts the cross-advice checks consume.
struct StageInfo {
  const std::string* tracepoint = nullptr;
  const Advice* advice = nullptr;

  std::vector<BagKey> packs;
  std::vector<BagKey> unpacks;
  bool sampled = false;    // Carries a Sample op with a rate in (0, 1).
  bool reads_all = false;  // Packs or emits with an empty projection.
  std::set<std::string> reads;  // Columns the stage consumes by name.
};

StageInfo CollectStage(const std::string& tracepoint, const Advice& advice) {
  StageInfo info;
  info.tracepoint = &tracepoint;
  info.advice = &advice;
  for (const Advice::Op& op : advice.ops()) {
    switch (op.kind) {
      case Advice::OpKind::kSample:
        if (op.sample_rate > 0.0 && op.sample_rate < 1.0) {
          info.sampled = true;
        }
        break;
      case Advice::OpKind::kUnpack:
        info.unpacks.push_back(op.bag);
        break;
      case Advice::OpKind::kPack: {
        info.packs.push_back(op.bag);
        if (op.bag_spec.semantics == PackSemantics::kAggregate) {
          for (const auto& g : op.bag_spec.group_fields) {
            info.reads.insert(g);
          }
          for (const AggSpec& spec : op.bag_spec.aggs) {
            if (!spec.input.empty()) {
              info.reads.insert(spec.input);
              if (spec.from_state && spec.fn == AggFn::kAverage) {
                info.reads.insert(spec.input + "#n");
              }
            }
          }
        } else if (op.fields.empty()) {
          info.reads_all = true;
        } else {
          info.reads.insert(op.fields.begin(), op.fields.end());
        }
        break;
      }
      case Advice::OpKind::kEmit:
        if (op.fields.empty()) {
          info.reads_all = true;
        } else {
          info.reads.insert(op.fields.begin(), op.fields.end());
        }
        break;
      case Advice::OpKind::kLet:
      case Advice::OpKind::kFilter: {
        if (op.expr != nullptr) {
          std::vector<std::string> fields;
          op.expr->CollectFields(&fields);
          info.reads.insert(fields.begin(), fields.end());
        }
        break;
      }
      case Advice::OpKind::kObserve:
        break;
    }
  }
  return info;
}

}  // namespace

const char* BaggageCostName(BaggageCost c) {
  switch (c) {
    case BaggageCost::kBounded:
      return "bounded";
    case BaggageCost::kUnboundedSampled:
      return "unbounded-sampled";
    case BaggageCost::kUnbounded:
      return "unbounded";
  }
  return "?";
}

QueryLintResult QueryLinter::Lint(
    uint64_t query_id, const std::vector<std::pair<std::string, Advice::Ptr>>& advice,
    const LintPlan& plan) const {
  QueryLintResult result;
  Report& report = result.report;

  if (advice.empty()) {
    report.Add("PT101", Severity::kError, "", -1, "query weaves no advice at all");
    return result;
  }

  // ---- Per-stage facts + happened-before DAG over bag dependencies ----

  std::vector<StageInfo> stages;
  stages.reserve(advice.size());
  for (const auto& [tp, adv] : advice) {
    if (adv == nullptr) {
      report.Add("PT101", Severity::kError, tp, -1, "null advice program");
      continue;
    }
    stages.push_back(CollectStage(tp, *adv));
  }

  std::map<BagKey, std::vector<size_t>> packers;
  for (size_t i = 0; i < stages.size(); ++i) {
    for (BagKey b : stages[i].packs) {
      packers[b].push_back(i);
    }
  }

  // Kahn's algorithm: stage j depends on stage i when j unpacks a bag i
  // packs. Stages left over when the queue drains sit on a pack/unpack cycle,
  // which has no valid happened-before order (PT202).
  std::vector<std::set<size_t>> deps(stages.size());
  for (size_t j = 0; j < stages.size(); ++j) {
    for (BagKey b : stages[j].unpacks) {
      auto it = packers.find(b);
      if (it == packers.end()) {
        continue;  // Never packed: the verifier reports PT106 below.
      }
      for (size_t i : it->second) {
        if (i != j) {
          deps[j].insert(i);
        } else {
          deps[j].insert(j);  // Self-cycle: a stage unpacking its own pack.
        }
      }
    }
  }

  std::vector<size_t> order;
  std::vector<bool> placed(stages.size(), false);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < stages.size(); ++i) {
      if (placed[i]) {
        continue;
      }
      bool ready = true;
      for (size_t d : deps[i]) {
        if (!placed[d]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(i);
        placed[i] = true;
        progressed = true;
      }
    }
  }
  std::vector<size_t> cyclic;
  for (size_t i = 0; i < stages.size(); ++i) {
    if (!placed[i]) {
      cyclic.push_back(i);
    }
  }
  if (!cyclic.empty()) {
    std::string names;
    for (size_t i : cyclic) {
      if (!names.empty()) {
        names += ", ";
      }
      names += *stages[i].tracepoint;
    }
    report.Add("PT202", Severity::kError, *stages[cyclic.front()].tracepoint, -1,
               "pack/unpack cycle across stages {" + names +
                   "}: no happened-before order can satisfy these bag dependencies");
  }

  // ---- Verify each stage in causal order, propagating bag knowledge ----

  bool all_emitted = false;
  std::set<std::string> emitted;
  auto verify_stage = [&](size_t i, bool on_cycle) {
    const StageInfo& stage = stages[i];
    VerifyContext ctx;
    ctx.query_id = query_id;
    if (options_.schema != nullptr) {
      Tracepoint* tp = options_.schema->Find(*stage.tracepoint);
      if (tp == nullptr) {
        report.Add("PT105", Severity::kError, *stage.tracepoint, -1,
                   "unknown tracepoint '" + *stage.tracepoint + "': not in the schema registry");
      } else {
        ctx.tracepoint = &tp->def();
      }
    }
    // Cycle stages have no well-defined upstream bag set; verify them with
    // open provenance so PT202 is not compounded with spurious PT106s.
    ctx.bags = on_cycle ? nullptr : &result.bags;
    VerifyResult vr = AdviceVerifier(ctx).Verify(*stage.advice);
    report.MergeFrom(vr.report);

    for (auto& [bag, cols] : vr.packed) {
      auto pos = result.bags.find(bag);
      if (pos == result.bags.end()) {
        result.bags.emplace(bag, std::move(cols));
        continue;
      }
      if (!(pos->second.spec == cols.spec)) {
        report.Add("PT205", Severity::kError, *stage.tracepoint, -1,
                   "bag " + std::to_string(bag) +
                       " is packed under conflicting specs by different stages");
      }
      pos->second.open_columns |= cols.open_columns;
      for (const auto& [name, type] : cols.columns) {
        auto [cpos, inserted] = pos->second.columns.emplace(name, type);
        if (!inserted) {
          cpos->second = JoinStaticTypes(cpos->second, type);
        }
      }
    }
    all_emitted |= vr.emits_all;
    emitted.insert(vr.emitted_columns.begin(), vr.emitted_columns.end());
  };
  for (size_t i : order) {
    verify_stage(i, /*on_cycle=*/false);
  }
  for (size_t i : cyclic) {
    verify_stage(i, /*on_cycle=*/true);
  }

  // ---- Bag-key hygiene: range (PT204) and cross-query collisions (PT203) ----

  for (const auto& [bag, cols] : result.bags) {
    (void)cols;
    if (query_id != 0 && BagKeyQuery(bag) != query_id) {
      report.Add("PT204", Severity::kWarning, "", -1,
                 "bag " + std::to_string(bag) + " lies in query " +
                     std::to_string(BagKeyQuery(bag)) + "'s key range, not query " +
                     std::to_string(query_id) + "'s (keys are query_id*" +
                     std::to_string(kBagKeysPerQuery) + "+stage)");
    }
    if (options_.installed_bags != nullptr) {
      auto it = options_.installed_bags->find(bag);
      if (it != options_.installed_bags->end() && it->second != query_id) {
        report.Add("PT203", Severity::kError, "", -1,
                   "bag " + std::to_string(bag) + " collides with installed query " +
                       std::to_string(it->second) +
                       ": their packed tuples would merge into one bag");
      }
    }
  }

  // ---- Result plan consumes only emitted columns (PT206) ----

  if (!all_emitted) {
    auto require_emitted = [&](const std::string& col, const std::string& role) {
      if (emitted.count(col) == 0) {
        report.Add("PT206", Severity::kError, "", -1,
                   role + " '" + col + "' is never emitted by any advice (it would always read "
                   "as null at the agent)");
      }
    };
    if (plan.aggregated) {
      for (const auto& g : plan.group_fields) {
        require_emitted(g, "result group field");
      }
      for (const AggSpec& spec : plan.aggs) {
        if (spec.input.empty()) {
          continue;  // COUNT over raw tuples needs no input column.
        }
        require_emitted(spec.input, "aggregation input");
        if (spec.from_state && spec.fn == AggFn::kAverage) {
          require_emitted(spec.input + "#n", "aggregation state column");
        }
      }
    } else {
      for (const auto& col : plan.output_columns) {
        require_emitted(col, "output column");
      }
    }
  }

  // ---- Dead packed columns / dead bags (PT207) ----

  if (options_.assume_projection_pushdown) {
    for (const auto& [bag, cols] : result.bags) {
      std::vector<const StageInfo*> consumers;
      for (const StageInfo& s : stages) {
        if (std::find(s.unpacks.begin(), s.unpacks.end(), bag) != s.unpacks.end()) {
          consumers.push_back(&s);
        }
      }
      if (consumers.empty()) {
        report.Add("PT207", Severity::kWarning, "", -1,
                   "bag " + std::to_string(bag) +
                       " is packed but no stage unpacks it: pure baggage overhead");
        continue;
      }
      if (cols.spec.semantics == PackSemantics::kAggregate) {
        continue;  // Aggregate state columns are the projection already.
      }
      for (const auto& [name, type] : cols.columns) {
        (void)type;
        bool used = false;
        for (const StageInfo* c : consumers) {
          if (c->reads_all || c->reads.count(name) != 0) {
            used = true;
            break;
          }
        }
        if (!used) {
          report.Add("PT207", Severity::kWarning, "", -1,
                     "bag " + std::to_string(bag) + " packs column '" + name +
                         "' but no unpacking stage reads it: project it away");
        }
      }
    }
  }

  // ---- Baggage cost classification (PT208 / PT209) ----

  for (const StageInfo& stage : stages) {
    size_t unbounded_packs = 0;
    for (size_t k = 0; k < stage.advice->ops().size(); ++k) {
      const Advice::Op& op = stage.advice->ops()[k];
      if (op.kind == Advice::OpKind::kPack && op.bag_spec.semantics == PackSemantics::kAll) {
        ++unbounded_packs;
        report.Add("PT208", Severity::kInfo, *stage.tracepoint, static_cast<int>(k),
                   "unbounded pack (ALL semantics) into bag " + std::to_string(op.bag) +
                       ": every invocation adds a tuple — the §4 full-table-scan risk, capped "
                       "only by the kMaxBagTuples valve" +
                       (stage.sampled ? " (mitigated here by advice-level sampling)" : ""));
        BaggageCost c =
            stage.sampled ? BaggageCost::kUnboundedSampled : BaggageCost::kUnbounded;
        if (static_cast<uint8_t>(c) > static_cast<uint8_t>(result.cost)) {
          result.cost = c;
        }
      }
    }
    (void)unbounded_packs;

    size_t unbounded_unpacks = 0;
    for (BagKey b : stage.unpacks) {
      auto it = result.bags.find(b);
      if (it != result.bags.end() && it->second.spec.semantics == PackSemantics::kAll) {
        ++unbounded_unpacks;
      }
    }
    if (unbounded_unpacks >= 2) {
      report.Add("PT209", Severity::kInfo, *stage.tracepoint, -1,
                 "joins " + std::to_string(unbounded_unpacks) +
                     " unbounded bags: the unpack join is a cartesian product, so the working "
                     "set can blow up multiplicatively (truncated at kMaxWorkingSet)");
    }
  }

  // ---- Deployment reachability (PT301 / PT302 / PT303 / PT305) ----
  //
  // Only with a non-empty propagation graph: no model, no opinion. Component
  // resolution prefers the schema's TracepointDef::component (present when
  // the frontend lints), falling back to the graph's anchors (agent-side
  // re-verify has no schema). An unresolvable component skips the check —
  // the gate must never reject a query it cannot reason about.

  const PropagationRegistry* graph = options_.propagation;
  if (graph != nullptr && !graph->empty()) {
    auto component_of = [&](const std::string& tp_name) -> std::string {
      if (options_.schema != nullptr) {
        Tracepoint* tp = options_.schema->Find(tp_name);
        if (tp != nullptr && !tp->def().component.empty()) {
          return tp->def().component;
        }
      }
      return graph->ComponentOf(tp_name);
    };

    // PT301: every unpacked bag needs some packer whose component has a
    // baggage-forwarding path to the unpacker's. Unknown components on
    // either side satisfy the check.
    for (const StageInfo& stage : stages) {
      std::string here = component_of(*stage.tracepoint);
      if (here.empty()) {
        continue;
      }
      for (BagKey b : stage.unpacks) {
        auto it = packers.find(b);
        if (it == packers.end()) {
          continue;  // PT106 territory, already reported by the verifier.
        }
        bool satisfiable = false;
        bool dropped_path = false;
        std::set<std::string> sources;
        for (size_t i : it->second) {
          std::string there = component_of(*stages[i].tracepoint);
          if (there.empty() || ForwardingReachable(*graph, there, here)) {
            satisfiable = true;
            break;
          }
          sources.insert(there);
          dropped_path |= AnyReachable(*graph, there, here);
        }
        if (satisfiable) {
          continue;
        }
        std::string from;
        for (const std::string& s : sources) {
          from += (from.empty() ? "" : ", ") + s;
        }
        report.Add("PT301", Severity::kError, *stage.tracepoint, -1,
                   "unsatisfiable happened-before join: no baggage-forwarding path connects "
                   "{" + from + "} to '" + here + "', so bag " + std::to_string(b) +
                       " can never arrive here — the query would install cleanly and "
                       "silently return nothing");
        if (dropped_path) {
          report.Add("PT302", Severity::kWarning, *stage.tracepoint, -1,
                     "a causal path from {" + from + "} to '" + here +
                         "' exists but crosses a boundary that drops baggage: extend the "
                         "protocol to forward baggage across it (§6)");
        }
      }
    }

    // PT303: tracepoints anchored to components no client entry reaches.
    // Skipped when the model declares no entry points at all.
    if (HasClientEntry(*graph)) {
      std::set<std::string> flagged;
      for (const StageInfo& stage : stages) {
        std::string here = component_of(*stage.tracepoint);
        if (here.empty() || !flagged.insert(here).second) {
          continue;
        }
        if (!ReachableFromEntry(*graph, here)) {
          report.Add("PT303", Severity::kWarning, *stage.tracepoint, -1,
                     "component '" + here +
                         "' is unreachable from every client entry point: this tracepoint "
                         "can never observe client-initiated requests");
        }
      }
    }

    // PT305: path-aware worst-case growth for All-semantics packs. PT208
    // flags the local risk as info; this bounds it against the deployment —
    // an All pack at component C can add (tuple width) cells per invocation
    // at every forwarding boundary crossing along the longest simple path
    // out of C. Over budget is an error (not forceable).
    for (const auto& [bag, cols] : result.bags) {
      if (cols.spec.semantics != PackSemantics::kAll) {
        continue;
      }
      auto it = packers.find(bag);
      if (it == packers.end()) {
        continue;
      }
      for (size_t i : it->second) {
        std::string there = component_of(*stages[i].tracepoint);
        if (there.empty()) {
          continue;
        }
        size_t crossings = std::max<size_t>(1, LongestForwardingPathFrom(*graph, there));
        size_t width =
            cols.open_columns ? size_t{8} : std::max<size_t>(1, cols.columns.size());
        size_t bound = crossings * width;
        if (bound > options_.baggage_budget) {
          report.Add("PT305", Severity::kError, *stages[i].tracepoint, -1,
                     "worst-case baggage growth for bag " + std::to_string(bag) + ": " +
                         std::to_string(crossings) + " forwarding boundary crossings from '" +
                         there + "' × " + std::to_string(width) + " columns = " +
                         std::to_string(bound) + " tuple-cells per request, over the budget "
                         "of " + std::to_string(options_.baggage_budget) +
                         " (Fig 10 growth; bound the pack or raise the budget)");
        }
      }
    }
  }

  return result;
}

}  // namespace analysis
}  // namespace pivot
