#include "src/query/lexer.h"

#include <cctype>

namespace pivot {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentCont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokenKind kind, size_t at, std::string tok_text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(tok_text);
    t.offset = at;
    out.push_back(std::move(t));
  };

  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < text.size() && IsIdentCont(text[j])) {
        ++j;
      }
      push(TokenKind::kIdent, start, std::string(text.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_double = false;
      while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      // A '.' starts a fraction only if followed by a digit — otherwise it is
      // a field-access dot (not produced after numbers, but be strict).
      if (j + 1 < text.size() && text[j] == '.' &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_double = true;
        ++j;
        while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
      }
      std::string num(text.substr(i, j - i));
      Token t;
      t.offset = start;
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::stod(num);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::stoll(num);
      }
      t.text = std::move(num);
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      std::string s;
      while (j < text.size() && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < text.size()) {
          ++j;  // Simple escape: next char literal.
        }
        s += text[j];
        ++j;
      }
      if (j >= text.size()) {
        return InvalidArgumentError("unterminated string literal at offset " +
                                    std::to_string(start));
      }
      push(TokenKind::kString, start, std::move(s));
      i = j + 1;
      continue;
    }
    // The paper's Q8 uses the UTF-8 math minus (U+2212, E2 88 92); accept it
    // as '-' so queries can be pasted verbatim.
    if (static_cast<unsigned char>(c) == 0xE2) {
      if (i + 2 < text.size() && static_cast<unsigned char>(text[i + 1]) == 0x88 &&
          static_cast<unsigned char>(text[i + 2]) == 0x92) {
        push(TokenKind::kMinus, start);
        i += 3;
        continue;
      }
      return InvalidArgumentError("unexpected character at offset " + std::to_string(start));
    }
    auto two = [&](char next) { return i + 1 < text.size() && text[i + 1] == next; };
    switch (c) {
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, start);
        ++i;
        break;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, start);
        ++i;
        break;
      case '-':
        if (two('>')) {
          push(TokenKind::kArrow, start);
          i += 2;
        } else {
          push(TokenKind::kMinus, start);
          ++i;
        }
        break;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, start);
        ++i;
        break;
      case '%':
        push(TokenKind::kPercent, start);
        ++i;
        break;
      case '=':
        if (two('=')) {
          push(TokenKind::kEq, start);
          i += 2;
        } else {
          return InvalidArgumentError("expected '==' at offset " + std::to_string(start));
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kBang, start);
          ++i;
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::kLe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      case '&':
        if (two('&')) {
          push(TokenKind::kAnd, start);
          i += 2;
        } else {
          return InvalidArgumentError("expected '&&' at offset " + std::to_string(start));
        }
        break;
      case '|':
        if (two('|')) {
          push(TokenKind::kOr, start);
          i += 2;
        } else {
          return InvalidArgumentError("expected '||' at offset " + std::to_string(start));
        }
        break;
      default:
        return InvalidArgumentError("unexpected character '" + std::string(1, c) +
                                    "' at offset " + std::to_string(start));
    }
  }
  push(TokenKind::kEnd, text.size());
  return out;
}

}  // namespace pivot
