#include "src/hadoop/cluster.h"

#include <cassert>

#include "src/hadoop/tracepoints.h"

namespace pivot {

HadoopCluster::HadoopCluster(HadoopClusterConfig config) : config_(std::move(config)) {
  RegisterHadoopTracepointDefs(world_.schema());
  master_host_ =
      world_.AddHost("master", config_.disk_bytes_per_sec, config_.nic_bytes_per_sec);
  for (int i = 0; i < config_.worker_hosts; ++i) {
    std::string name(1, static_cast<char>('A' + i));
    worker_hosts_.push_back(
        world_.AddHost(name, config_.disk_bytes_per_sec, config_.nic_bytes_per_sec));
  }

  hdfs_ = HdfsDeployment::Create(&world_, master_host_, worker_hosts_, config_.hdfs,
                                 config_.seed);
  hdfs_.namenode->CreateFiles(config_.dataset_files);

  if (config_.deploy_hbase) {
    hbase_ = HbaseDeployment::Create(&world_, master_host_, worker_hosts_, hdfs_.namenode,
                                     config_.hbase, config_.seed ^ 0x68626173);
  }
  if (config_.deploy_mapreduce) {
    yarn_ = YarnDeployment::Create(&world_, master_host_, worker_hosts_,
                                   config_.mapreduce.containers_per_node);
    mapreduce_ = std::make_unique<MapReduceRuntime>(&world_, yarn_.resource_manager.get(),
                                                    hdfs_.namenode, config_.seed ^ 0x6D617072);
  }
}

SimProcess* HadoopCluster::AddClient(SimHost* host, std::string name) {
  // Workload clients are the propagation graph's entry points.
  return world_.AddProcess(host, std::move(name), "client");
}

void HadoopCluster::DowngradeNic(SimHost* host, double bytes_per_sec) {
  host->nic_in().set_rate(bytes_per_sec);
  host->nic_out().set_rate(bytes_per_sec);
}

void HadoopCluster::InjectGcPauses(SimProcess* proc, int64_t period_micros,
                                   int64_t duration_micros, int64_t until_micros) {
  for (int64_t t = period_micros; t <= until_micros; t += period_micros) {
    world_.env()->ScheduleAt(t, [proc, duration_micros] {
      proc->PauseUntil(proc->world()->env()->now_micros() + duration_micros);
    });
  }
}

}  // namespace pivot
