#include <gtest/gtest.h>

#include "src/query/compiler.h"
#include "src/query/naive_eval.h"
#include "src/query/parser.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

// Reconstruction of the example execution of Fig 3: tracepoints A, B and C
// fire several times across two branches that fork and rejoin. The expected
// join results are printed verbatim in the figure.
class Fig3Test : public ::testing::Test {
 protected:
  Fig3Test() {
    trace_ = recorder_.NewTrace();
    TraceGraph* g = recorder_.graph(trace_);
    EventId root = g->AddEvent({});
    // Branch 1: b1 -> c1.
    EventId branch1 = g->AddEvent({root});
    EventId b1 = Fire("B", "b1", g, branch1);
    EventId c1 = Fire("C", "c1", g, b1);
    // Branch 2: a1 -> a2 -> b2.
    EventId branch2 = g->AddEvent({root});
    EventId a1 = Fire("A", "a1", g, branch2);
    EventId a2 = Fire("A", "a2", g, a1);
    EventId b2 = Fire("B", "b2", g, a2);
    // Rejoin, then c2 and a3.
    EventId join = g->AddEvent({c1, b2});
    EventId c2 = Fire("C", "c2", g, join);
    Fire("A", "a3", g, c2);
  }

  EventId Fire(const std::string& tracepoint, const std::string& id, TraceGraph* g,
               EventId parent) {
    EventId ev = g->AddEvent({parent});
    ObservedEvent obs;
    obs.trace_id = trace_;
    obs.event = ev;
    obs.tracepoint = tracepoint;
    obs.exports = Tuple{{"id", Value(id)}};
    recorder_.Record(std::move(obs));
    return ev;
  }

  std::vector<std::string> Rows(const std::string& query_text) {
    Result<Query> q = ParseQuery(query_text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Result<NaiveResult> result = EvaluateNaive(*q, recorder_, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return CanonicalTuples(result->rows);
  }

  TraceRecorder recorder_;
  uint64_t trace_ = 0;
};

TEST_F(Fig3Test, QueryAAlone) {
  EXPECT_EQ(Rows("From a In A Select a.id"),
            (std::vector<std::string>{"(a.id=a1)", "(a.id=a2)", "(a.id=a3)"}));
}

TEST_F(Fig3Test, AJoinB) {
  // Fig 3: A ->⋈ B = { a1 b2, a2 b2 }.
  EXPECT_EQ(Rows("From b In B Join a In A On a -> b Select a.id, b.id"),
            (std::vector<std::string>{"(a.id=a1, b.id=b2)", "(a.id=a2, b.id=b2)"}));
}

TEST_F(Fig3Test, BJoinC) {
  // Fig 3: B ->⋈ C = { b1 c1, b1 c2, b2 c2 }.
  EXPECT_EQ(Rows("From c In C Join b In B On b -> c Select b.id, c.id"),
            (std::vector<std::string>{"(b.id=b1, c.id=c1)", "(b.id=b1, c.id=c2)",
                                      "(b.id=b2, c.id=c2)"}));
}

TEST_F(Fig3Test, AJoinBJoinC) {
  // Fig 3: (A ->⋈ B) ->⋈ C = { a1 b2 c2, a2 b2 c2 }.
  EXPECT_EQ(
      Rows("From c In C Join b In B On b -> c Join a In A On a -> b Select a.id, b.id, c.id"),
      (std::vector<std::string>{"(a.id=a1, b.id=b2, c.id=c2)",
                                "(a.id=a2, b.id=b2, c.id=c2)"}));
}

TEST_F(Fig3Test, CountAggregation) {
  EXPECT_EQ(Rows("From b In B Join a In A On a -> b Select COUNT"),
            (std::vector<std::string>{"(COUNT=2)"}));
}

TEST_F(Fig3Test, GroupedCount) {
  EXPECT_EQ(Rows("From c In C Join b In B On b -> c GroupBy b.id Select b.id, COUNT"),
            (std::vector<std::string>{"(b.id=b1, COUNT=2)", "(b.id=b2, COUNT=1)"}));
}

TEST_F(Fig3Test, MostRecentPicksLatestPredecessor) {
  // For c2, the most recent preceding B is b2 (b1 is older); c1's is b1.
  EXPECT_EQ(Rows("From c In C Join b In MostRecent(B) On b -> c Select b.id, c.id"),
            (std::vector<std::string>{"(b.id=b1, c.id=c1)", "(b.id=b2, c.id=c2)"}));
}

TEST_F(Fig3Test, FirstPicksEarliestPredecessor) {
  EXPECT_EQ(Rows("From c In C Join b In First(B) On b -> c Select b.id, c.id"),
            (std::vector<std::string>{"(b.id=b1, c.id=c1)", "(b.id=b1, c.id=c2)"}));
}

TEST_F(Fig3Test, WhereFilters) {
  EXPECT_EQ(Rows("From c In C Join b In B On b -> c Where b.id == \"b2\" Select b.id, c.id"),
            (std::vector<std::string>{"(b.id=b2, c.id=c2)"}));
}

TEST_F(Fig3Test, TuplesShippedCountsAllObservations) {
  Result<Query> q = ParseQuery("From b In B Join a In A On a -> b Select COUNT");
  ASSERT_TRUE(q.ok());
  Result<NaiveResult> result = EvaluateNaive(*q, recorder_, nullptr);
  ASSERT_TRUE(result.ok());
  // Global evaluation must ship every A and B observation: 3 + 2.
  EXPECT_EQ(result->tuples_shipped, 5u);
  EXPECT_EQ(result->join_rows, 2u);
}

TEST(NaiveEvalTest, SeparateRequestsDoNotJoin) {
  // a ≺ b only holds within "the execution of the same request" (§3).
  TraceRecorder recorder;
  for (int i = 0; i < 2; ++i) {
    uint64_t t = recorder.NewTrace();
    TraceGraph* g = recorder.graph(t);
    EventId root = g->AddEvent({});
    EventId a = g->AddEvent({root});
    recorder.Record(ObservedEvent{t, a, "A", Tuple{{"id", Value(int64_t{i})}}});
    EventId b = g->AddEvent({a});
    recorder.Record(ObservedEvent{t, b, "B", Tuple{{"id", Value(int64_t{i})}}});
  }
  Result<Query> q = ParseQuery("From b In B Join a In A On a -> b Select a.id, b.id");
  ASSERT_TRUE(q.ok());
  Result<NaiveResult> result = EvaluateNaive(*q, recorder, nullptr);
  ASSERT_TRUE(result.ok());
  // Only the two within-request pairs, not the cross product.
  EXPECT_EQ(CanonicalTuples(result->rows),
            (std::vector<std::string>{"(a.id=0, b.id=0)", "(a.id=1, b.id=1)"}));
}

TEST(NaiveEvalTest, SubqueryJoinInlines) {
  // Q9's shape: a latency measurement defined by one query, averaged per
  // anchor event by another.
  TraceRecorder recorder;
  // Two requests: latencies 100 and 300, both ending in JobComplete.
  for (int64_t latency : {100, 300}) {
    uint64_t t = recorder.NewTrace();
    TraceGraph* g = recorder.graph(t);
    EventId root = g->AddEvent({});
    EventId recv = g->AddEvent({root});
    recorder.Record(ObservedEvent{t, recv, "ReceiveRequest", Tuple{{"time", Value(int64_t{0})}}});
    EventId send = g->AddEvent({recv});
    recorder.Record(ObservedEvent{t, send, "SendResponse", Tuple{{"time", Value(latency)}}});
    EventId job = g->AddEvent({send});
    recorder.Record(ObservedEvent{t, job, "JobComplete", Tuple{{"id", Value("J")}}});
  }

  QueryRegistry named;
  ASSERT_TRUE(named
                  .Register("Q8", *ParseQuery("From response In SendResponse "
                                              "Join request In MostRecent(ReceiveRequest) "
                                              "On request -> response "
                                              "Select response.time - request.time"))
                  .ok());
  Result<Query> q9 = ParseQuery(
      "From job In JobComplete "
      "Join latencyMeasurement In Q8 On latencyMeasurement -> job "
      "GroupBy job.id Select job.id, AVERAGE(latencyMeasurement)");
  ASSERT_TRUE(q9.ok());
  Result<NaiveResult> result = EvaluateNaive(*q9, recorder, &named);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].Get("job.id").string_value(), "J");
  EXPECT_DOUBLE_EQ(result->rows[0].Get("AVERAGE(latencyMeasurement)").AsDouble(), 200.0);
}

TEST(NaiveEvalTest, SampledSourcesRejected) {
  TraceRecorder recorder;
  Result<Query> q = ParseQuery("From e In Sample(10, X) Select COUNT");
  ASSERT_TRUE(q.ok());
  Result<NaiveResult> result = EvaluateNaive(*q, recorder, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(NaiveEvalTest, UnionSources) {
  TraceRecorder recorder;
  uint64_t t = recorder.NewTrace();
  TraceGraph* g = recorder.graph(t);
  EventId root = g->AddEvent({});
  EventId e1 = g->AddEvent({root});
  recorder.Record(ObservedEvent{t, e1, "DataRPCs", Tuple{{"id", Value("d")}}});
  EventId e2 = g->AddEvent({e1});
  recorder.Record(ObservedEvent{t, e2, "ControlRPCs", Tuple{{"id", Value("c")}}});

  Result<Query> q = ParseQuery("From e In DataRPCs, ControlRPCs Select e.id");
  ASSERT_TRUE(q.ok());
  Result<NaiveResult> result = EvaluateNaive(*q, recorder, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(CanonicalTuples(result->rows),
            (std::vector<std::string>{"(e.id=c)", "(e.id=d)"}));
}

}  // namespace
}  // namespace pivot
