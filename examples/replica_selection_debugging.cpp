// Interactive-style walkthrough of the §6.1 root-cause investigation: the
// HDFS replica-selection bug (HDFS-6268), diagnosed step by step with the
// paper's queries. Each step installs a query at runtime, looks at the
// results, and decides what to ask next — the "pivot" workflow the system is
// named for.
//
// Build & run:  ./build/examples/replica_selection_debugging

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "src/common/strings.h"
#include "src/hadoop/cluster.h"

using namespace pivot;

namespace {

constexpr int64_t kStepSeconds = 6;
int64_t g_now_s = 0;

// Runs the workload for a few more seconds, then returns results of `query`.
std::vector<Tuple> Observe(HadoopCluster* cluster, uint64_t query) {
  g_now_s += kStepSeconds;
  cluster->world()->RunUntil(g_now_s * kMicrosPerSecond);
  return cluster->world()->frontend()->Results(query);
}

}  // namespace

int main() {
  HadoopClusterConfig config;
  config.worker_hosts = 8;
  config.dataset_files = 500;
  config.seed = 6268;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  config.hdfs.datanode_op_micros = 800;
  config.hdfs.static_order_hosts = {"A", "D", "B", "C", "E", "F", "G", "H"};
  HadoopCluster cluster(config);
  Frontend* frontend = cluster.world()->frontend();

  // The stress test: 4 clients per host doing closed-loop 8 kB reads.
  std::vector<std::unique_ptr<HdfsReadWorkload>> clients;
  uint64_t seed = 1;
  for (int h = 0; h < 8; ++h) {
    for (int c = 0; c < 4; ++c) {
      SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(h)), "StressTest");
      clients.push_back(std::make_unique<HdfsReadWorkload>(proc, cluster.namenode(), 8 << 10,
                                                           10 * kMicrosPerMilli, true, seed++));
      clients.back()->Start(120 * kMicrosPerSecond);
    }
  }
  cluster.world()->StartAgentFlushLoop(120 * kMicrosPerSecond);

  printf("Symptom: stress-test clients on hosts A and D are slower than the others,\n"
         "and machine-level network counters are skewed. Let's find out why.\n\n");

  // ---- Step 1 (Q3): is HDFS load balanced across DataNodes? ----
  printf("Step 1 — install Q3: count DataTransferProtocol ops per DataNode.\n");
  uint64_t q3 = *frontend->Install(
      "From dnop In DN.DataTransferProtocol GroupBy dnop.host Select dnop.host, COUNT");
  for (const Tuple& row : Observe(&cluster, q3)) {
    printf("    %s\n", row.ToString().c_str());
  }
  printf("  -> Heavily skewed! A and D serve several times more requests than G or H,\n"
         "     even though clients read files uniformly at random. Why?\n\n");

  // ---- Step 2 (Q4): are the clients actually reading uniformly? ----
  printf("Step 2 — install Q4: joins NameNode lookups to the client that made them.\n");
  uint64_t q4 = *frontend->Install(
      "From getloc In NN.GetBlockLocations\n"
      "Join st In StressTest.DoNextOp On st -> getloc\n"
      "GroupBy st.host, getloc.src Select st.host, getloc.src, COUNT");
  {
    auto rows = Observe(&cluster, q4);
    std::map<std::string, double> per_client;
    for (const Tuple& row : rows) {
      per_client[row.Get("st.host").string_value()] += row.Get("COUNT").AsDouble();
    }
    printf("    distinct (client, file) pairs: %zu\n", rows.size());
    for (const auto& [host, count] : per_client) {
      printf("    client %s made %.0f lookups\n", host.c_str(), count);
    }
  }
  printf("  -> Yes: every client reads uniformly at random. The skew is not the\n"
         "     clients' doing.\n\n");

  // ---- Step 3 (Q5): is block placement skewed? ----
  printf("Step 3 — install Q5: how often is each DataNode a *replica location*?\n");
  uint64_t q5 = *frontend->Install(
      "From getloc In NN.GetBlockLocations\n"
      "Join st In StressTest.DoNextOp On st -> getloc\n"
      "GroupBy st.host, getloc.replicas Select st.host, getloc.replicas, COUNT");
  {
    std::map<std::string, double> replica_freq;
    for (const Tuple& row : Observe(&cluster, q5)) {
      for (const auto& host : StrSplit(row.Get("getloc.replicas").string_value(), ',')) {
        replica_freq[host] += row.Get("COUNT").AsDouble();
      }
    }
    for (const auto& [host, freq] : replica_freq) {
      printf("    %s hosts a replica of the requested file %.0f times\n", host.c_str(), freq);
    }
  }
  printf("  -> Near-uniform. Clients have equal opportunity to read from every\n"
         "     DataNode... yet they don't. Who *selects* the replica?\n\n");

  // ---- Step 4 (Q6): which DataNode does each client choose? ----
  printf("Step 4 — install Q6: client host x selected DataNode.\n");
  uint64_t q6 = *frontend->Install(
      "From DNop In DN.DataTransferProtocol\n"
      "Join st In StressTest.DoNextOp On st -> DNop\n"
      "GroupBy st.host, DNop.host Select st.host, DNop.host, COUNT");
  {
    std::map<std::pair<std::string, std::string>, double> matrix;
    for (const Tuple& row : Observe(&cluster, q6)) {
      matrix[{row.Get("st.host").string_value(), row.Get("DNop.host").string_value()}] =
          row.Get("COUNT").AsDouble();
    }
    printf("          ");
    for (char c = 'A'; c <= 'H'; ++c) {
      printf("%8c", c);
    }
    printf("\n");
    for (char r = 'A'; r <= 'H'; ++r) {
      printf("    %c ->  ", r);
      for (char c = 'A'; c <= 'H'; ++c) {
        printf("%8.0f", matrix[{std::string(1, r), std::string(1, c)}]);
      }
      printf("\n");
    }
  }
  printf("  -> The strong diagonal is expected (clients prefer local replicas), but when\n"
         "     there is no local replica, clients clearly favor A, then D, then B...\n\n");

  // ---- Step 5 (Q7): given the choices offered, which replica wins? ----
  printf("Step 5 — install Q7: 3-way join relating the chosen DataNode to the\n"
         "         *other* replicas that were offered (non-local reads only).\n");
  uint64_t q7 = *frontend->Install(
      "From DNop In DN.DataTransferProtocol\n"
      "Join getloc In NN.GetBlockLocations On getloc -> DNop\n"
      "Join st In StressTest.DoNextOp On st -> getloc\n"
      "Where st.host != DNop.host\n"
      "GroupBy DNop.host, getloc.replicas Select DNop.host, getloc.replicas, COUNT");
  {
    std::map<std::string, std::pair<double, double>> win_loss;  // host -> (wins, appearances)
    for (const Tuple& row : Observe(&cluster, q7)) {
      double count = row.Get("COUNT").AsDouble();
      std::string chosen = row.Get("DNop.host").string_value();
      for (const auto& host : StrSplit(row.Get("getloc.replicas").string_value(), ',')) {
        win_loss[host].second += count;
        if (host == chosen) {
          win_loss[host].first += count;
        }
      }
    }
    for (const auto& [host, wl] : win_loss) {
      printf("    %s chosen %5.0f of %6.0f times it was offered (%.0f%%)\n", host.c_str(),
             wl.first, wl.second, wl.second > 0 ? wl.first / wl.second * 100 : 0);
    }
  }
  printf("  -> A wins whenever it is offered; D wins unless A is also offered; a strict\n"
         "     total order. Conclusion: clients always take the FIRST location returned,\n"
         "     and the NameNode does NOT randomize the rack-local ordering. That is\n"
         "     HDFS-6268 — both halves of the bug, pinpointed with five runtime queries\n"
         "     and zero recompilation.\n");

  for (uint64_t q : {q3, q4, q5, q6, q7}) {
    (void)frontend->Uninstall(q);
  }
  return 0;
}
